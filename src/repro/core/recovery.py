"""Churn-tolerant synchronizer execution (DESIGN.md §11).

The fault-free synchronizer is an exact machine: every Go-Ahead is gated on
acknowledgments and chosen/not-chosen answers, so a single crashed neighbor
stalls its whole subtree forever.  This module layers the recovery
semantics on top:

* :class:`RecoverySynchronizerProcess` runs the synchronizer with
  ``recovery=True`` bookkeeping, reacts to the transport's failure
  detectors (``on_neighbor_dead``) by pruning the dead neighbor out of
  every local wait set, and drops any straggler message from a pruned
  sender (a pre-crash message deferred across a link-down interval would
  otherwise trip the Lemma 5.1 oracle — under fail-stop semantics a dead
  node's words are void from the moment the crash is *detected*).
* :func:`run_churn` drives a full experiment in one of three modes:

  - ``"degrade"`` — one pass: survivors prune dead subtrees on detection
    and keep the pulses they completed.  Outputs are best-effort, bounded
    by ``dist_G(v) <= output(v) <= dist_H(v)`` for BFS-style programs
    (``H`` = the surviving component; see DESIGN.md §11).
  - ``"rebuild"`` — the degrade pass, then a clean re-registration and
    re-run on the surviving component, whose outputs are exact for ``H``.
  - ``"reanchor"`` — the degrade pass, then a *bounded local* repair
    (DESIGN.md §15): only the orphaned survivors (those the degrade pass
    left without an output) are re-anchored beneath the answered nodes
    adjacent to them, via an offset-flood wave on the orphan patch — the
    anchors initiate with their degrade-output distance and the patch
    relaxes ``dist + 1`` to a fixpoint.  Costs messages proportional to
    the patch, not to ``|H|``, and the re-anchored outputs still satisfy
    the ``dist_G <= out <= dist_H`` sandwich (the wave minimizes over
    every anchor, and every ``H``-shortest path enters the patch through
    one of them).  Distance-valued (BFS-family) programs only.

Dynamic networks (DESIGN.md §15): when the schedule contains re-join
events, a returned node comes back with blank protocol state and the
transport's recovery detector fires ``on_neighbor_alive`` at its live
neighbors; :class:`RecoverySynchronizerProcess` reacts by *readmitting*
the neighbor — un-pruning it and restoring the registration/aggregation
views — so the stacks address it again going forward.  The reborn node
itself stays passive (it cannot join barrier instances whose history it
missed), which is exactly the gap ``mode="reanchor"`` then repairs: the
returned node is an orphan of the final surviving graph and gets its
output from the re-anchoring wave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..net.async_runtime import AsyncRuntime, ProcessContext
from ..net.delays import DelayModel
from ..net.faults import DETECT_TIMEOUT, FaultSchedule
from ..net.graph import Graph, NodeId
from ..net.program import (
    ArrivedBatch,
    NodeInfo,
    NodeProgram,
    ProgramSpec,
    PulseApi,
    fixed_initiators,
)
from .bfs_runner import registry_for_threshold
from .synchronizer import SynchronizerProcess, pulse_bound_for, run_synchronized

#: ``spec_factory(root)`` builds the program spec for a given root/source
#: node id, so the rebuild pass can re-instantiate the same algorithm on the
#: remapped surviving component.
SpecFactory = Callable[[NodeId], ProgramSpec]


class RecoverySynchronizerProcess(SynchronizerProcess):
    """Synchronizer process with churn recovery (DESIGN.md §11).

    Subclass per run via :func:`run_churn` (the same ``type(...)`` binding
    pattern as :func:`~repro.core.synchronizer.run_synchronized`).
    """

    recovery = True

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        # Fail-stop enforcement: once a neighbor is pruned, nothing it said
        # may reach the modules — a pre-crash message deferred across a
        # down interval can arrive arbitrarily late.  The guard costs one
        # set probe per delivered message, so the opcode-table fast path is
        # disabled for recovery runs.
        node = self.node
        inner = node.handle
        pruned = node._pruned

        def guarded(sender: NodeId, payload: Tuple) -> None:
            if sender in pruned:
                return
            inner(sender, payload)

        self.on_message = guarded
        self.on_message_table = None

    def on_start(self) -> None:
        if self.ctx.now > 0.0:
            # Reborn mid-run (a rejoin event rebuilt this process): stay
            # passive.  The synchronizer's barrier instances encode history
            # this incarnation did not witness — re-running ``start`` would
            # contribute to base barriers the survivors already closed (the
            # contributions would be dropped as late words, at pure message
            # cost) and could never yield a Go-Ahead.  Catching the node up
            # is the re-anchoring wave's job (``run_churn`` mode
            # ``"reanchor"``), not the barrier replay's (DESIGN.md §15).
            return
        self.node.start()

    def on_neighbor_dead(self, neighbor: NodeId) -> None:
        # Clear the jammed link first (a send into the crashed node never
        # acks, wedging the outbox), then detach the neighbor from every
        # protocol wait set.
        self.ctx.reset_link(neighbor)
        self.node.prune_neighbor(neighbor)

    def on_neighbor_alive(self, neighbor: NodeId) -> None:
        # The recovery detector's soundness bound (DESIGN.md §15) fired:
        # every pre-rejoin message on the shared link has been delivered or
        # voided, so readmitting the neighbor cannot let a stale word from
        # its previous incarnation slip past the pruned-sender guard.
        self.node.readmit_neighbor(neighbor)


@dataclass
class ChurnOutcome:
    """Outcome of one :func:`run_churn` experiment."""

    mode: str
    crashed: Tuple[NodeId, ...]
    #: Nodes in the root's connected component over the surviving graph.
    survivors: Tuple[NodeId, ...]
    #: Final outputs restricted to survivors (rebuild mode: the clean
    #: re-run's outputs, mapped back to original node ids).
    outputs: Dict[NodeId, Any]
    #: Survivors that produced any output at all.
    answered: int
    messages: int
    acks: int
    dropped: int
    #: Events fired across both passes (degrade pass + rebuild, if any).
    events_fired: int
    time_to_output: float
    time_to_quiescence: float
    #: Messages of the rebuild pass (0 outside rebuild mode).
    rebuild_messages: int
    stop_reason: str
    #: Messages of the re-anchoring wave (0 outside reanchor mode).
    reanchor_messages: int = 0
    #: Crashed nodes that re-joined before the end of the run (they count
    #: as live for the surviving component — H is time-varying, and the
    #: sandwich is stated against its final snapshot).
    rejoined: Tuple[NodeId, ...] = ()

    @property
    def survivor_count(self) -> int:
        return len(self.survivors)

    @property
    def total_messages(self) -> int:
        return self.messages + self.rebuild_messages + self.reanchor_messages


def _surviving_component(
    graph: Graph, live: Set[NodeId], root: NodeId
) -> Tuple[NodeId, ...]:
    """Root's connected component in the subgraph induced by ``live``."""
    seen = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u in live and u not in seen:
                    seen.add(u)
                    nxt.append(u)
        frontier = nxt
    return tuple(sorted(seen))


class _ReanchorProgram(NodeProgram):
    """Offset BFS flood for the re-anchoring wave (DESIGN.md §15).

    Anchors (the initiators) start with their degrade-output distance and
    flood it; every other patch node relaxes ``min(received) + 1`` to a
    fixpoint, recording the neighbor its best offer came from as its new
    parent.  Unit-weight distributed Bellman-Ford, event-driven: a node
    sends only when an arrival improved it, so the paper's Section 5.1
    contract holds and the wave runs under the full synchronizer stack.

    ``anchor_dist`` is bound per run via ``type(...)`` (remapped node id →
    starting distance), like the synchronizer's own per-run subclassing.
    """

    anchor_dist: Dict[NodeId, float] = {}

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.dist: Optional[float] = None
        self.parent: Optional[NodeId] = None

    def on_start(self, api: PulseApi) -> None:
        self.dist = self.anchor_dist[self.info.node_id]
        api.set_output((self.dist, None))
        for v in self.info.neighbors:
            api.send(v, self.dist)

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        if not arrived:
            return
        # Best offer of the batch; sender id breaks ties so the chosen
        # parent is schedule-independent.
        sender, value = min(arrived, key=lambda sv: (sv[1], sv[0]))
        cand = value + 1
        if self.dist is not None and cand >= self.dist:
            return
        self.dist = cand
        self.parent = sender
        api.set_output((self.dist, self.parent))
        for v in self.info.neighbors:
            api.send(v, self.dist)


def _distance_of(value: Any) -> float:
    """Distance component of a degrade output — BFS-family convention:
    either the bare distance or a ``(distance, parent)`` pair."""
    d = value[0] if isinstance(value, tuple) else value
    if not isinstance(d, (int, float)) or isinstance(d, bool):
        raise ValueError(
            "mode='reanchor' needs distance-valued outputs (a number or a"
            f" (distance, parent) tuple), got {value!r}"
        )
    return d


def run_churn(
    graph: Graph,
    spec_factory: SpecFactory,
    delay_model: DelayModel,
    faults: FaultSchedule,
    mode: str = "degrade",
    root: NodeId = 0,
    detect_timeout: float = DETECT_TIMEOUT,
    builder: str = "ap",
    max_pulse: Optional[int] = None,
    max_events: int = 100_000_000,
) -> ChurnOutcome:
    """Run ``spec_factory(root)`` under the synchronizer through a churn.

    Deterministic end to end: the fault schedule, the delay model, and the
    recovery reactions are all pure functions of their seeds, so a fixed
    ``(graph, spec, delay_model, faults, mode)`` pins the whole execution.
    """
    if mode not in ("degrade", "rebuild", "reanchor"):
        raise ValueError(
            f"mode must be 'degrade', 'rebuild' or 'reanchor', got {mode!r}"
        )
    if faults.crash_time(root) != float("inf"):
        raise ValueError(
            f"the root/source {root} is scheduled to crash; protect it"
            f" (FaultSchedule(..., protect=({root},)))"
        )
    spec = spec_factory(root)
    if max_pulse is None:
        max_pulse = pulse_bound_for(graph, spec)
    registry = registry_for_threshold(graph, max_pulse, builder)
    namespace = dict(
        spec=spec,
        registry=registry,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
    )
    process_cls = type(
        "BoundRecoverySynchronizer", (RecoverySynchronizerProcess,), namespace
    )
    runtime = AsyncRuntime(
        graph, process_cls, delay_model,
        faults=faults, detect_timeout=detect_timeout,
    )
    result = runtime.run(max_events=max_events)

    crashed = tuple(faults.crashed_nodes(graph.nodes))
    rejoined = tuple(faults.rejoining_nodes(graph.nodes))
    # H is time-varying: a crashed node that re-joined is live in the final
    # snapshot the sandwich is stated against (its blank-state incarnation
    # typically has no output yet — exactly what reanchor mode repairs).
    live = (set(graph.nodes) - set(crashed)) | set(rejoined)
    survivors = _surviving_component(graph, live, root)
    outputs = {v: result.outputs[v] for v in survivors if v in result.outputs}

    rebuild_messages = 0
    reanchor_messages = 0
    events_fired = result.events_fired
    if mode == "reanchor":
        orphans = {v for v in survivors if v not in outputs}
        # Answered survivors adjacent to an orphan: the anchors.  Every
        # H-shortest path into the orphan patch crosses one, so the
        # min-flood's outputs stay inside the dist_G/dist_H sandwich.
        anchors = sorted(
            u
            for u in outputs
            if any(w in orphans for w in graph.neighbors(u))
        )
        if orphans and anchors:
            patch = sorted(orphans | set(anchors))
            subgraph, remap = graph.induced_subgraph(patch)
            anchor_dist = {remap[a]: _distance_of(outputs[a]) for a in anchors}
            program_cls = type(
                "BoundReanchorProgram", (_ReanchorProgram,),
                dict(anchor_dist=anchor_dist),
            )
            wave_spec = ProgramSpec(
                "reanchor-flood", program_cls,
                fixed_initiators(remap[a] for a in anchors),
            )
            sub_result = run_synchronized(
                subgraph, wave_spec, delay_model,
                builder=builder, max_events=max_events,
            )
            back = {new: old for old, new in remap.items()}
            tupled = isinstance(outputs[anchors[0]], tuple)
            for nv, (d, par) in sub_result.outputs.items():
                ov = back[nv]
                if ov not in orphans:
                    continue  # anchors keep their degrade outputs
                parent = None if par is None else back[par]
                outputs[ov] = (d, parent) if tupled else d
            reanchor_messages = sub_result.messages
            events_fired += sub_result.events_fired
    if mode == "rebuild":
        # Clean re-registration on the surviving component: covers, views
        # and pulse bound are all rebuilt for H, so the second pass is an
        # ordinary fault-free synchronizer run whose outputs are exact.
        subgraph, remap = graph.induced_subgraph(survivors)
        sub_result = run_synchronized(
            subgraph, spec_factory(remap[root]), delay_model,
            builder=builder, max_events=max_events,
        )
        back = {new: old for old, new in remap.items()}
        outputs = {back[v]: value for v, value in sub_result.outputs.items()}
        rebuild_messages = sub_result.messages
        events_fired += sub_result.events_fired

    return ChurnOutcome(
        mode=mode,
        crashed=crashed,
        survivors=survivors,
        outputs=outputs,
        answered=sum(1 for v in survivors if v in outputs),
        messages=result.messages,
        acks=result.acks,
        dropped=result.dropped,
        events_fired=events_fired,
        time_to_output=result.time_to_output,
        time_to_quiescence=result.time_to_quiescence,
        rebuild_messages=rebuild_messages,
        stop_reason=result.stop_reason,
        reanchor_messages=reanchor_messages,
        rejoined=rejoined,
    )
