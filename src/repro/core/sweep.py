"""Protocol-level sweep engines: one setup, many delay-model replays.

The expensive part of a synchronizer (or thresholded-BFS) run over a fresh
graph is not the event loop alone: measuring the pulse bound, building the
layered sparse cover, assigning registry views, and deriving node infos
together cost as much as the run itself at n=256.  Every experiment in the
paper replays the *same* graph and program under a family of delay models,
so these engines construct all of that shared immutable state exactly once
and then replay a fresh :class:`~repro.net.async_runtime.AsyncRuntime` per
model through :class:`~repro.net.sweep.AsyncSweep`.

Shared across replays (immutable): the graph and its directed-link
skeleton, the measured pulse bound T(A), the layered cover and its
:class:`~repro.core.registry.CoverRegistry` views, the node infos, the
initiator set, the memoized pulse tables, and the bound process class.
Rebuilt per replay (mutable): processes, link slots, the event heap — so
each replay is byte-identical to the corresponding standalone
``run_synchronized`` / ``run_thresholded_bfs`` call, which the engine
equivalence tests pin per delay model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from ..net.program import ProgramSpec
from ..net.async_runtime import AsyncResult
from ..net.sweep import AsyncSweep, run_models
from .bfs_runner import (
    BFSOutcome,
    ThresholdedBFSProcess,
    registry_for_threshold,
)
from .registry import CoverRegistry
from .synchronizer import SynchronizerProcess, pulse_bound_for


class SynchronizerSweep:
    """Replay one event-driven program under many delay models.

    ``SynchronizerSweep(graph, spec).run(model)`` is byte-identical to
    ``run_synchronized(graph, spec, model)`` — same outputs, message counts,
    times, and delivery traces — but the cover/registry/pulse-bound setup is
    paid once for the whole sweep instead of once per model.
    """

    def __init__(
        self,
        graph: Graph,
        spec: ProgramSpec,
        registry: Optional[CoverRegistry] = None,
        max_pulse: Optional[int] = None,
        builder: str = "ap",
    ) -> None:
        if max_pulse is None:
            max_pulse = pulse_bound_for(graph, spec)
        if registry is None:
            registry = registry_for_threshold(graph, max_pulse, builder)
        self.graph = graph
        self.spec = spec
        self.max_pulse = max_pulse
        self.registry = registry
        namespace = dict(
            spec=spec,
            registry=registry,
            max_pulse=max_pulse,
            initiators=frozenset(spec.initiators(graph)),
            infos=spec.make_infos(graph),
        )
        self.process_cls = type(
            "SweepSynchronizer", (SynchronizerProcess,), namespace
        )
        self._sweep = AsyncSweep(graph, self.process_cls)

    def run(
        self, delay_model: DelayModel, max_events: int = 100_000_000
    ) -> AsyncResult:
        """One replay; raises unless the run reaches quiescence."""
        result = self._sweep.run(delay_model, max_events=max_events)
        if result.stop_reason != "quiescent":
            raise RuntimeError(
                f"synchronizer did not finish: {result.stop_reason}"
            )
        return result

    def run_all(
        self, delay_models: Iterable[DelayModel], max_events: int = 100_000_000
    ) -> List[AsyncResult]:
        """Replay every model under one sweep-wide GC pause."""
        return run_models(
            lambda model: self.run(model, max_events=max_events), delay_models
        )


class ThresholdedBFSSweep:
    """Replay one 2^t-thresholded (multi-source) BFS under many delay models.

    ``ThresholdedBFSSweep(graph, sources, threshold).run(model)`` is
    byte-identical to ``run_thresholded_bfs(graph, sources, threshold,
    model)`` with the cover built once per sweep.
    """

    def __init__(
        self,
        graph: Graph,
        sources: Iterable[NodeId] | NodeId,
        threshold: int,
        registry: Optional[CoverRegistry] = None,
        builder: str = "ap",
    ) -> None:
        source_set = (
            frozenset((sources,)) if isinstance(sources, int) else frozenset(sources)
        )
        if not source_set:
            raise ValueError("at least one source required")
        if registry is None:
            registry = registry_for_threshold(graph, threshold, builder)
        self.graph = graph
        self.sources = source_set
        self.threshold = threshold
        self.registry = registry
        namespace = dict(
            registry=registry, sources=source_set, threshold=threshold
        )
        self.process_cls = type(
            "SweepThresholdedBFS", (ThresholdedBFSProcess,), namespace
        )
        self._sweep = AsyncSweep(graph, self.process_cls)

    def run(
        self, delay_model: DelayModel, max_events: int = 50_000_000
    ) -> BFSOutcome:
        result = self._sweep.run(delay_model, max_events=max_events)
        if result.stop_reason != "quiescent":
            raise RuntimeError(f"BFS did not finish: {result.stop_reason}")
        graph = self.graph
        missing = set(graph.nodes) - set(result.outputs)
        if missing:
            raise RuntimeError(
                f"BFS deadlocked: nodes {sorted(missing)} never completed"
            )
        distances = {v: result.outputs[v][0] for v in graph.nodes}
        parents = {v: result.outputs[v][1] for v in graph.nodes}
        return BFSOutcome(distances=distances, parents=parents, result=result)

    def run_all(
        self, delay_models: Iterable[DelayModel], max_events: int = 50_000_000
    ) -> List[BFSOutcome]:
        """Replay every model under one sweep-wide GC pause."""
        return run_models(
            lambda model: self.run(model, max_events=max_events), delay_models
        )


def sweep_synchronized(
    graph: Graph,
    spec: ProgramSpec,
    delay_models: Iterable[DelayModel],
    registry: Optional[CoverRegistry] = None,
    max_pulse: Optional[int] = None,
    builder: str = "ap",
    max_events: int = 100_000_000,
) -> List[AsyncResult]:
    """Convenience wrapper: one synchronizer setup, one result per model."""
    sweep = SynchronizerSweep(
        graph, spec, registry=registry, max_pulse=max_pulse, builder=builder
    )
    return sweep.run_all(delay_models, max_events=max_events)
