"""Protocol-level sweep engines: one setup, many delay-model replays.

The expensive part of a synchronizer (or thresholded-BFS) run over a fresh
graph is not the event loop alone: measuring the pulse bound, building the
layered sparse cover, assigning registry views, and deriving node infos
together cost as much as the run itself at n=256.  Every experiment in the
paper replays the *same* graph and program under a family of delay models,
so these engines construct all of that shared immutable state exactly once
and then replay a fresh :class:`~repro.net.async_runtime.AsyncRuntime` per
model through :class:`~repro.net.sweep.AsyncSweep`.

Shared across replays (immutable): the graph and its directed-link
skeleton, the measured pulse bound T(A), the layered cover and its
:class:`~repro.core.registry.CoverRegistry` views, the node infos, the
initiator set, the memoized pulse tables, and the bound process class.
Rebuilt per replay (mutable): processes, link slots, the event heap — so
each replay is byte-identical to the corresponding standalone
``run_synchronized`` / ``run_thresholded_bfs`` call, which the engine
equivalence tests pin per delay model.
"""

from __future__ import annotations

import copyreg

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Type

from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from ..net.program import ProgramSpec
from ..net.async_runtime import AsyncResult, Process
from ..net.shard import CellSummary, run_sharded, run_timed
from ..net.sweep import AsyncSweep, run_models
from .bfs_runner import (
    BFSOutcome,
    ThresholdedBFSProcess,
    registry_for_threshold,
)
from .registry import CoverRegistry
from .synchronizer import SynchronizerProcess, pulse_bound_for


class _BoundProcessMeta(type):
    """Metaclass of the dynamically bound per-sweep process classes.

    A sweep binds its immutable setup (registry views, pulse tables, node
    infos...) into a throwaway class — ``type("SweepSynchronizer",
    (SynchronizerProcess,), namespace)`` historically.  Such classes are
    anonymous: pickle's by-name class lookup fails, which would block
    shipping a sweep to shard workers.  Classes created through
    :func:`bound_process_class` use this metaclass instead, and a
    ``copyreg`` reducer (consulted by pickle *before* the by-name fallback)
    reduces the class to a module-level rebuild call carrying its
    ``(name, base, namespace)`` ingredients — so the worker reconstructs a
    class with the parent's exact bound state, and objects referenced from
    both the namespace and the sweep (the registry in particular) are
    shipped once thanks to pickle memoization.
    """


def bound_process_class(
    name: str, base: Type[Process], namespace: Dict[str, object]
) -> type:
    """A sweep-bound ``base`` subclass with ``namespace`` as class attrs,
    picklable by reconstruction (see :class:`_BoundProcessMeta`)."""
    namespace = dict(namespace)
    cls = _BoundProcessMeta(name, (base,), dict(namespace))
    cls._bound_class_state = (name, base, namespace)
    return cls


def _rebuild_bound_class(
    name: str, base: Type[Process], namespace: Dict[str, object]
) -> type:
    return bound_process_class(name, base, namespace)


def _reduce_bound_class(cls: type):
    return _rebuild_bound_class, cls._bound_class_state


copyreg.pickle(_BoundProcessMeta, _reduce_bound_class)


class SynchronizerSweep:
    """Replay one event-driven program under many delay models.

    ``SynchronizerSweep(graph, spec).run(model)`` is byte-identical to
    ``run_synchronized(graph, spec, model)`` — same outputs, message counts,
    times, and delivery traces — but the cover/registry/pulse-bound setup is
    paid once for the whole sweep instead of once per model.
    """

    def __init__(
        self,
        graph: Graph,
        spec: ProgramSpec,
        registry: Optional[CoverRegistry] = None,
        max_pulse: Optional[int] = None,
        builder: str = "ap",
    ) -> None:
        if max_pulse is None:
            max_pulse = pulse_bound_for(graph, spec)
        if registry is None:
            registry = registry_for_threshold(graph, max_pulse, builder)
        self.graph = graph
        self.spec = spec
        self.max_pulse = max_pulse
        self.registry = registry
        namespace = dict(
            spec=spec,
            registry=registry,
            max_pulse=max_pulse,
            initiators=frozenset(spec.initiators(graph)),
            infos=spec.make_infos(graph),
        )
        self.process_cls = bound_process_class(
            "SweepSynchronizer", SynchronizerProcess, namespace
        )
        self._sweep = AsyncSweep(graph, self.process_cls)

    def run(
        self, delay_model: DelayModel, max_events: int = 100_000_000
    ) -> AsyncResult:
        """One replay; raises unless the run reaches quiescence."""
        result = self._sweep.run(delay_model, max_events=max_events)
        if result.stop_reason != "quiescent":
            raise RuntimeError(
                f"synchronizer did not finish: {result.stop_reason}"
            )
        return result

    def run_all(
        self, delay_models: Iterable[DelayModel], max_events: int = 100_000_000
    ) -> List[AsyncResult]:
        """Replay every model under one sweep-wide GC pause."""
        return run_models(
            lambda model: self.run(model, max_events=max_events), delay_models
        )

    def run_all_sharded(
        self,
        delay_models: Iterable[DelayModel],
        jobs: Optional[int] = None,
        max_events: int = 100_000_000,
        start_method: Optional[str] = None,
    ) -> List[CellSummary]:
        """Fan the models across ``jobs`` workers; summaries in model order.

        Digest/count-identical to :meth:`run_all` (see DESIGN.md §14);
        ``jobs=1`` is the untouched in-process loop.
        """
        return run_sweeps_sharded(
            [self], delay_models,
            jobs=jobs, max_events=max_events, start_method=start_method,
        )[0]


class ThresholdedBFSSweep:
    """Replay one 2^t-thresholded (multi-source) BFS under many delay models.

    ``ThresholdedBFSSweep(graph, sources, threshold).run(model)`` is
    byte-identical to ``run_thresholded_bfs(graph, sources, threshold,
    model)`` with the cover built once per sweep.
    """

    def __init__(
        self,
        graph: Graph,
        sources: Iterable[NodeId] | NodeId,
        threshold: int,
        registry: Optional[CoverRegistry] = None,
        builder: str = "ap",
    ) -> None:
        source_set = (
            frozenset((sources,)) if isinstance(sources, int) else frozenset(sources)
        )
        if not source_set:
            raise ValueError("at least one source required")
        if registry is None:
            registry = registry_for_threshold(graph, threshold, builder)
        self.graph = graph
        self.sources = source_set
        self.threshold = threshold
        self.registry = registry
        namespace = dict(
            registry=registry, sources=source_set, threshold=threshold
        )
        self.process_cls = bound_process_class(
            "SweepThresholdedBFS", ThresholdedBFSProcess, namespace
        )
        self._sweep = AsyncSweep(graph, self.process_cls)

    def run(
        self, delay_model: DelayModel, max_events: int = 50_000_000
    ) -> BFSOutcome:
        result = self._sweep.run(delay_model, max_events=max_events)
        if result.stop_reason != "quiescent":
            raise RuntimeError(f"BFS did not finish: {result.stop_reason}")
        graph = self.graph
        missing = set(graph.nodes) - set(result.outputs)
        if missing:
            raise RuntimeError(
                f"BFS deadlocked: nodes {sorted(missing)} never completed"
            )
        distances = {v: result.outputs[v][0] for v in graph.nodes}
        parents = {v: result.outputs[v][1] for v in graph.nodes}
        return BFSOutcome(distances=distances, parents=parents, result=result)

    def run_all(
        self, delay_models: Iterable[DelayModel], max_events: int = 50_000_000
    ) -> List[BFSOutcome]:
        """Replay every model under one sweep-wide GC pause."""
        return run_models(
            lambda model: self.run(model, max_events=max_events), delay_models
        )

    def run_all_sharded(
        self,
        delay_models: Iterable[DelayModel],
        jobs: Optional[int] = None,
        max_events: int = 50_000_000,
        start_method: Optional[str] = None,
    ) -> List[CellSummary]:
        """Fan the models across ``jobs`` workers; summaries in model order.

        Digest/count-identical to :meth:`run_all` (see DESIGN.md §14);
        ``jobs=1`` is the untouched in-process loop.
        """
        return run_sweeps_sharded(
            [self], delay_models,
            jobs=jobs, max_events=max_events, start_method=start_method,
        )[0]


class _SweepCells:
    """Picklable bundle of ``len(sweeps) * len(models)`` replay cells.

    The per-worker shipment of DESIGN.md §14: the sweeps carry every piece
    of shared immutable state (graph, link skeleton, cover, registry views,
    pulse tables, node infos, bound process class — all constructed once in
    the parent), the models carry the per-cell adversaries.  Cell ``index``
    maps to ``(sweep index, model index)`` in row-major order, so the
    canonical index-sorted merge equals the serial ``for sweep: for
    model:`` nesting exactly.
    """

    def __init__(
        self,
        sweeps: Sequence[object],
        delay_models: Sequence[DelayModel],
        max_events: Optional[int] = None,
    ) -> None:
        self.sweeps = tuple(sweeps)
        self.models = tuple(delay_models)
        self.max_events = max_events

    def __len__(self) -> int:
        return len(self.sweeps) * len(self.models)

    def run_cell(self, index: int) -> CellSummary:
        sweep_idx, model_idx = divmod(index, len(self.models))
        sweep = self.sweeps[sweep_idx]
        model = self.models[model_idx]
        if self.max_events is None:
            # Each sweep type's own run() default (sync 100M / tbfs 50M).
            return run_timed(index, lambda: sweep.run(model))
        return run_timed(
            index, lambda: sweep.run(model, max_events=self.max_events)
        )


def run_sweeps_sharded(
    sweeps: Sequence[object],
    delay_models: Iterable[DelayModel],
    jobs: Optional[int] = None,
    max_events: Optional[int] = None,
    start_method: Optional[str] = None,
) -> List[List[CellSummary]]:
    """Fan a ``sweeps x models`` matrix across a process pool.

    One pool (and one bundle shipment per worker) for the whole matrix, so
    multi-graph aggregates — the E5/E10/E11 benchmark cells pair a cycle
    and a grid — keep every core busy across graph boundaries instead of
    paying a pool per graph.  Returns one summary list per sweep, each in
    model order; ``max_events=None`` leaves each sweep's own default.
    """
    cells = _SweepCells(sweeps, tuple(delay_models), max_events)
    flat = run_sharded(cells, jobs=jobs, start_method=start_method)
    per_sweep = len(cells.models)
    # Re-index each sweep's slice to model order: a summary's index is its
    # position within its own sweep (as run_all's results are), not its
    # position in the flat matrix.
    return [
        [replace(s, index=mi) for mi, s in
         enumerate(flat[i * per_sweep:(i + 1) * per_sweep])]
        for i in range(len(cells.sweeps))
    ]


def sweep_synchronized(
    graph: Graph,
    spec: ProgramSpec,
    delay_models: Iterable[DelayModel],
    registry: Optional[CoverRegistry] = None,
    max_pulse: Optional[int] = None,
    builder: str = "ap",
    max_events: int = 100_000_000,
) -> List[AsyncResult]:
    """Convenience wrapper: one synchronizer setup, one result per model."""
    sweep = SynchronizerSweep(
        graph, spec, registry=registry, max_pulse=max_pulse, builder=builder
    )
    return sweep.run_all(delay_models, max_events=max_events)
