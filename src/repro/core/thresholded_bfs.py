"""Asynchronous 2^t-thresholded multi-source BFS (Sections 4.1 and 4.2).

One :class:`ThresholdedBFSCore` instance per node implements the paper's
pulse machinery, given a layered sparse cover:

* Nodes join the *execution tree* by accepting the first ``join`` proposal;
  ``pulse(v) = pulse(parent) + 1`` (Section 4.1.1).  Lemma 4.10 — which the
  tests check against true BFS distances under every adversary — states that
  pulses equal distances.
* For every pulse ``q``, a *safety/emptiness flow* travels up the execution
  tree from pulse ``q-1`` nodes to the pulse ``prev(prev(q))`` ancestor: a
  node reports for flow ``q`` once its own join proposals are answered and
  all children reported (Definition 4.6).
* When flow ``q`` assembles at a node of pulse ``prev(q) > 0`` (the *gate*)
  and is non-empty, the node p-registers — for every ``p`` with
  ``prev(p) = q`` — in all clusters of the ``2^{l(p)+5}``-cover containing
  it, and only then forwards the report upward.
* When flow ``q`` assembles at the pulse ``prev(prev(q))`` ancestor (the
  *terminus*), the node q-deregisters and waits for Go-Ahead(q) from all
  those clusters; the Go-Ahead then walks down non-empty branches and
  releases the pulse-q nodes' join proposals.
* Pulses with ``prev(prev(p)) = 0`` use the Section 4.2 base case: their
  registration is a whole-cluster convergecast completed *before any source
  sends*, and their deregistration/Go-Ahead is likewise a convergecast whose
  sources contribute upon p-safety.
* The checking stage (Section 4.1.2) gathers "every source in this
  2^t-cluster is 2^t-safe" so unreached nodes can output infinity.

The threshold must be a power of two; arbitrary thresholds are provided by
the multi-stage wrapper (Section 4.3 / Remark 4.18) in
:mod:`repro.core.multi_stage`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..net.graph import NodeId
from .cluster_ops import ClusterAggregateModule, and_merge
from .pulse import (
    gating_pulses_cached,
    assemble_pulses,
    cover_level,
    prev,
    prev_prev,
    source_pulses,
)
from .registration import RegistrationModule, resolve_link_pair
from .registry import CoverRegistry

UNREACHED = float("inf")

#: Protocol-private wire opcodes, continuing the shared-module range
#: (aggregation 0..1, registration 2..5 — see DESIGN.md §6).
OP_JOIN = 6
OP_ANSWER = 7
OP_FLOW = 8
OP_GA = 9

#: The two join answers, prebuilt: every join triggers exactly one of them,
#: and payloads are opaque to the transport, so sharing the tuples shaves an
#: allocation off the hottest reply path without touching the schedule.
_ANSWER_YES = (OP_ANSWER, True)
_ANSWER_NO = (OP_ANSWER, False)

SendFn = Callable[[NodeId, Tuple, int], None]  # (to, payload, stage-priority)

#: Int-coded aggregate tags (DESIGN.md §10): the Section 4.2 base-case
#: barriers and the checking stage ride the shared aggregation module as
#: ``pulse << 2 | kind`` ints (kind 0 = source-registration barrier, 1 =
#: source-deregistration barrier, 3 = the checking stage) instead of the
#: historical ``("sreg", p)`` tuples, so every aggregate wire key packs to
#: one pre-hashed int (the synchronizer made the same move in DESIGN.md §6)
#: and the ~95% of a thresholded-BFS run that is aggregation traffic stops
#: hashing tuples on every dict probe.
_AGG_KIND_SREG = 0
_AGG_KIND_SDEREG = 1
_AGG_KIND_CHECK = 3
_CHECK_TAG = _AGG_KIND_CHECK  # pulse field 0


def _sreg_tag(p: int) -> int:
    return (p << 2) | _AGG_KIND_SREG


def _sdereg_tag(p: int) -> int:
    return (p << 2) | _AGG_KIND_SDEREG


def _stage_of_pulse_tag(tag: Any) -> Any:
    return tag


def _and_merge_for(tag: Any) -> Any:
    return and_merge


class _Flow:
    """Per-pulse safety/emptiness flow state at one node (plain slots:
    allocated on the hot path, a dataclass init costs ~3x as much)."""

    __slots__ = ("reports", "assembled", "empty", "gate_wait", "gate_done")

    def __init__(self) -> None:
        self.reports: Dict[NodeId, bool] = {}
        self.assembled = False
        self.empty: Optional[bool] = None
        self.gate_wait = 0
        self.gate_done = False


class ThresholdedBFSCore:
    """Per-node engine for one thresholded-BFS instance.

    The owner routes messages to :meth:`handle`, calls :meth:`activate` once
    (telling the node whether it is a source), and receives the node's
    distance (or ``None`` for "beyond threshold") via ``on_complete``.
    """

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Sequence[NodeId],
        registry: CoverRegistry,
        threshold: int,
        send: SendFn,
        on_complete: Callable[[Optional[int]], None],
        links=None,  # neighbor -> dense link id (ProcessContext.links)
        send_link=None,  # (link_id, payload, priority) -> None
        pool: bool = True,  # recycle registration stage slots (DESIGN.md §10)
        recovery: bool = False,  # track join answers for churn pruning
    ) -> None:
        if threshold < 1 or threshold & (threshold - 1):
            raise ValueError(f"threshold must be a power of two, got {threshold}")
        self.node_id = node_id
        self.neighbors = tuple(neighbors)
        self.registry = registry
        self.threshold = threshold
        self.t = threshold.bit_length() - 1
        required = cover_level(threshold)
        if registry.top_level < min(required, self.t):
            raise ValueError(
                f"layered cover top level {registry.top_level} too small for"
                f" threshold {threshold}"
            )
        links, send_link = resolve_link_pair(
            "ThresholdedBFSCore", send, links, send_link
        )
        self._links = links
        self._send_link = send_link
        self._neighbor_links = tuple(links[v] for v in self.neighbors)
        self.on_complete = on_complete

        views = registry.views_of(node_id)
        # The module priorities are plain stage ints, exactly what the host
        # ``send`` expects — the modules call it directly (priorities are
        # cached per tag inside each module).
        self.reg = RegistrationModule(
            node_id=node_id,
            clusters=views,
            send=send,
            on_registered=self._on_registered,
            on_go_ahead=self._on_cluster_go_ahead,
            priority_fn=_stage_of_pulse_tag,  # tag is the pulse = its stage
            links=links,
            send_link=send_link,
            pool=pool,
        )
        self.agg = ClusterAggregateModule(
            node_id=node_id,
            clusters=views,
            send=send,
            on_result=self._on_agg_result,
            merge_fn=_and_merge_for,
            priority_fn=self._agg_stage,
            links=links,
            send_link=send_link,
        )
        # Opcode-indexed dispatch table (DESIGN.md §6): one tuple index per
        # delivered message, calling straight into the per-kind handlers.
        self._dispatch = (
            self.agg.handle_up,        # 0 OP_AGG_UP
            self.agg.handle_down,      # 1 OP_AGG_DOWN
            self.reg.handle_reg_up,    # 2 OP_REG_UP
            self.reg.handle_reg_done,  # 3 OP_REG_DONE
            self.reg.handle_dereg,     # 4 OP_REG_DEREG
            self.reg.handle_go_ahead,  # 5 OP_REG_GO_AHEAD
            self._handle_join,         # 6 OP_JOIN
            self._handle_answer,       # 7 OP_ANSWER
            self._handle_flow,         # 8 OP_FLOW
            self._handle_ga,           # 9 OP_GA
        )

        self.activated = False
        self.is_source = False
        self.covered = False
        self.pulse: Optional[int] = None
        self.parent: Optional[NodeId] = None
        self.parent_link: Optional[int] = None
        self.children: List[NodeId] = []
        self._children_links: List[int] = []
        # (child, link) pairs, frozen once the join answers complete, so the
        # Go-Ahead walks iterate one prebuilt tuple instead of re-zipping.
        self._child_pairs: Tuple[Tuple[NodeId, int], ...] = ()
        self.joins_sent = False
        self.answers_pending = 0
        self.answered = False
        self.completed = False

        self._flows: Dict[int, _Flow] = {}
        self._base_pulses = [p for p in source_pulses(threshold)]
        self._reg_pending: Dict[int, int] = {}
        self._registered: Set[int] = set()
        self._awaiting_dereg: Set[int] = set()
        self._goahead_pending: Dict[int, Set[int]] = {}
        self._released: Set[int] = set()
        self._sreg_pending: Dict[int, Set[int]] = {}
        self._sdereg_pending: Dict[int, Set[int]] = {}
        self._check_pending: Set[int] = set()
        # Recovery mode (DESIGN.md §11): remember which neighbors still owe
        # a join answer so :meth:`prune_neighbor` can count a crashed
        # neighbor's unanswered proposal as a decline.  None outside
        # recovery — the bare counter carries the fault-free protocol.
        self.recovery = recovery
        self._pruned: Set[NodeId] = set()
        self._answer_wait: Optional[Set[NodeId]] = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _agg_stage(self, tag: int) -> int:
        kind = tag & 3
        if kind == _AGG_KIND_SREG or kind == _AGG_KIND_SDEREG:
            return tag >> 2
        if kind == _AGG_KIND_CHECK:
            return self.threshold + 1
        raise ValueError(f"unknown aggregate tag {tag!r}")  # pragma: no cover

    def _flow(self, q: int) -> _Flow:
        flow = self._flows.get(q)
        if flow is None:
            flow = _Flow()
            self._flows[q] = flow
        return flow

    def _level_for(self, p: int) -> int:
        return self.registry.clamp_level(cover_level(p))

    @property
    def check_level(self) -> int:
        return self.registry.clamp_level(self.t)

    def _participates(self, q: int) -> bool:
        """Is this node on flow q's path (prev_prev(q) <= pulse <= q-1)?"""
        return (
            self.pulse is not None
            and prev_prev(q) <= self.pulse <= q - 1
        )

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def activate(self, is_source: bool, covered: bool = False) -> None:
        """Start this node's participation; called exactly once.

        ``covered`` marks a node whose distance was finalized by an earlier
        stage/iteration (Section 4.3 staging, Theorem 4.24 dead nodes): it
        declines every join proposal and otherwise participates as a
        non-source relay so cluster barriers still complete.
        """
        if self.activated:
            raise ValueError(f"node {self.node_id} activated twice")
        if covered and is_source:
            raise ValueError("a covered node cannot be a source")
        self.activated = True
        self.covered = covered
        self.is_source = is_source
        if is_source:
            self.pulse = 0
            for p in self._base_pulses:
                members = set(self.registry.member_clusters(self.node_id, self._level_for(p)))
                self._sreg_pending[p] = set(members)
                self._sdereg_pending[p] = set(members)
        # All bookkeeping state must exist before the first contribution:
        # on single-node clusters a barrier completes synchronously and the
        # whole protocol can cascade inside agg.contribute.
        self._check_pending = set(
            self.registry.member_clusters(self.node_id, self.check_level)
        )
        for cid in self.registry.tree_clusters_of(self.node_id, self.check_level):
            member_source = is_source and self.registry.is_member(self.node_id, cid)
            if not member_source:
                self.agg.contribute(cid, _CHECK_TAG, True)
        # Start-time convergecast contributions (Section 4.2 base case):
        # every tree node contributes; source members defer their
        # deregistration contribution until p-safe.
        for p in self._base_pulses:
            lvl = self._level_for(p)
            sreg, sdereg = _sreg_tag(p), _sdereg_tag(p)
            for cid in self.registry.tree_clusters_of(self.node_id, lvl):
                member_source = is_source and self.registry.is_member(self.node_id, cid)
                self.agg.contribute(cid, sreg, True)
                if not member_source:
                    self.agg.contribute(cid, sdereg, True)
        self._maybe_source_send()

    def _maybe_source_send(self) -> None:
        if (
            self.is_source
            and not self.joins_sent
            and all(not pending for pending in self._sreg_pending.values())
        ):
            self._send_joins()

    # ------------------------------------------------------------------
    # join / answer
    # ------------------------------------------------------------------
    def _send_joins(self) -> None:
        if self.joins_sent:
            return
        self.joins_sent = True
        stage = self.pulse + 1
        self.answers_pending = len(self.neighbors)
        send_link = self._send_link
        payload = (OP_JOIN, self.pulse)
        if not self.recovery:
            for lid in self._neighbor_links:
                send_link(lid, payload, stage)
        else:
            # Recovery mode: never propose to a neighbor already known
            # dead, and remember who still owes an answer so a later crash
            # counts as a declined proposal (DESIGN.md §11).
            pruned = self._pruned
            wait = set()
            for v, lid in zip(self.neighbors, self._neighbor_links):
                if v in pruned:
                    self.answers_pending -= 1
                    continue
                wait.add(v)
                send_link(lid, payload, stage)
            self._answer_wait = wait
        if self.answers_pending == 0:
            self._answers_complete()

    def _handle_join(self, sender: NodeId, payload: Tuple) -> None:
        if not self.activated:
            raise AssertionError(
                f"node {self.node_id} received a join before activation —"
                " the Section 4.2 registration barrier should prevent this"
            )
        sender_pulse = payload[1]
        stage = sender_pulse + 1
        sender_link = self._links[sender]
        if self.pulse is None and not self.covered:
            self.pulse = sender_pulse + 1
            self.parent = sender
            self.parent_link = sender_link
            self._send_link(sender_link, _ANSWER_YES, stage)
        else:
            self._send_link(sender_link, _ANSWER_NO, stage)

    def _handle_answer(self, sender: NodeId, payload: Tuple) -> None:
        if payload[1]:
            self.children.append(sender)
            self._children_links.append(self._links[sender])
        aw = self._answer_wait
        if aw is not None:
            aw.discard(sender)
        self.answers_pending -= 1
        if self.answers_pending == 0:
            self._answers_complete()

    def _answers_complete(self) -> None:
        self.answered = True
        self._child_pairs = tuple(zip(self.children, self._children_links))
        leaf_flow = self.pulse + 1
        if leaf_flow <= self.threshold:
            self._flow_assembled(leaf_flow, empty=(len(self.children) == 0))
        if self.children:
            for q in list(self._flows):
                self._try_assemble(q)
        else:
            # A childless node is the frontier of every flow through it
            # (prev_prev(q) <= pulse always holds on the memoized table).
            for q in assemble_pulses(self.pulse, self.threshold):
                self._flow_assembled(q, empty=True)

    # ------------------------------------------------------------------
    # churn recovery (DESIGN.md §11, best-effort)
    # ------------------------------------------------------------------
    def prune_neighbor(self, dead: NodeId) -> None:
        """Detach a crashed neighbor: its unanswered join proposal counts
        as a decline, its execution-tree subtree is dropped, and the prune
        is forwarded to the registration/aggregation modules so cluster
        convergecasts re-close over the survivors.  Idempotent."""
        if not self.recovery:
            raise RuntimeError(
                "prune_neighbor requires recovery mode (ThresholdedBFSCore"
                " was built with recovery=False)"
            )
        if dead in self._pruned:
            return
        self._pruned.add(dead)
        self.reg.prune_child(dead)
        self.agg.prune_child(dead)
        aw = self._answer_wait
        if aw is not None and dead in aw:
            aw.discard(dead)
            self.answers_pending -= 1
            if self.answers_pending == 0:
                self._answers_complete()
        if dead in self.children:
            i = self.children.index(dead)
            del self.children[i]
            del self._children_links[i]
            for flow in self._flows.values():
                flow.reports.pop(dead, None)
            if self.answered:
                self._child_pairs = tuple(
                    zip(self.children, self._children_links)
                )
                for q in list(self._flows):
                    self._try_assemble(q)
                for q in assemble_pulses(self.pulse, self.threshold):
                    self._try_assemble(q)

    # ------------------------------------------------------------------
    # safety/emptiness flows
    # ------------------------------------------------------------------
    def _handle_flow(self, sender: NodeId, payload: Tuple) -> None:
        q = payload[1]
        flows = self._flows
        flow = flows.get(q)
        if flow is None:
            flow = flows[q] = _Flow()
        if sender in flow.reports:
            raise AssertionError(
                f"duplicate flow-{q} report from {sender} at {self.node_id}"
            )
        flow.reports[sender] = payload[2]
        self._try_assemble(q)

    def _try_assemble(self, q: int) -> None:
        flows = self._flows
        flow = flows.get(q)
        if flow is None:
            flow = flows[q] = _Flow()
        if flow.assembled or not self.answered:
            return
        if q == self.pulse + 1:
            return  # the leaf path assembles this one
        # Reports only come from accepted children (the answer precedes any
        # flow report on the same link), so a length check replaces the old
        # set comparison; a rogue reporter surfaces as a KeyError below.
        if len(flow.reports) < len(self.children):
            return
        reports = flow.reports
        empty = True
        for c in self.children:
            if not reports[c]:
                empty = False
                break
        self._flow_assembled(q, empty)

    def _flow_assembled(self, q: int, empty: bool) -> None:
        flow = self._flow(q)
        if flow.assembled:
            return
        flow.assembled = True
        flow.empty = empty
        # Gate: register for every pulse p with prev(p) = q before passing
        # the report on (Section 4.1.2, first bullet).  All gate_wait slots
        # are reserved before any registration is issued, because a
        # root-cluster registration confirms synchronously.
        if self.pulse == prev(q) and self.pulse > 0 and not empty:
            gates = []
            for p in gating_pulses_cached(q, self.threshold):
                cids = self.registry.member_clusters(self.node_id, self._level_for(p))
                if not cids:  # pragma: no cover - home cluster always exists
                    continue
                self._reg_pending[p] = len(cids)
                flow.gate_wait += 1
                gates.append((p, cids))
            for p, cids in gates:
                for cid in cids:
                    self.reg.register(cid, p)
        if flow.gate_wait == 0:
            self._after_gate(q)

    def _on_registered(self, cid: int, p: int) -> None:
        self._reg_pending[p] -= 1
        if self._reg_pending[p] > 0:
            return
        self._registered.add(p)
        if p in self._awaiting_dereg:
            self._awaiting_dereg.discard(p)
            self._do_deregister(p)
        q = prev(p)
        flow = self._flow(q)
        flow.gate_wait -= 1
        if flow.gate_wait == 0 and flow.assembled:
            self._after_gate(q)

    def _after_gate(self, q: int) -> None:
        flow = self._flow(q)
        if flow.gate_done:
            return
        flow.gate_done = True
        if self.pulse == prev_prev(q):
            self._terminus(q, flow)
        else:
            self._send_link(self.parent_link, (OP_FLOW, q, flow.empty), q)

    def _terminus(self, q: int, flow: _Flow) -> None:
        if self.pulse == 0:
            # Base case (Section 4.2): q-safety reached the source; its
            # deregistration is the convergecast contribution.  Iterate a
            # copy: a single-node cluster confirms synchronously, mutating
            # the pending set.
            sdereg = _sdereg_tag(q)
            for cid in list(self._sdereg_pending.get(q, ())):
                self.agg.contribute(cid, sdereg, True)
            if not self._sdereg_pending.get(q):
                self._release_go_ahead(q)
            if q == self.threshold:
                self._contribute_check()
            return
        if q in self._registered:
            self._do_deregister(q)
        elif self._reg_pending.get(q, 0) > 0:
            self._awaiting_dereg.add(q)
        else:
            # Never registered for q: flow prev(q) was empty here, hence so
            # is flow q; nothing to release.
            assert flow.empty, (
                f"node {self.node_id} reached flow-{q} terminus non-empty"
                " without having registered"
            )

    def _do_deregister(self, q: int) -> None:
        cids = self.registry.member_clusters(self.node_id, self._level_for(q))
        self._goahead_pending[q] = set(cids)
        for cid in cids:
            self.reg.deregister(cid, q)

    def _on_cluster_go_ahead(self, cid: int, q: int) -> None:
        pending = self._goahead_pending.get(q)
        if pending is None:
            return
        pending.discard(cid)
        if not pending:
            self._release_go_ahead(q)

    # ------------------------------------------------------------------
    # Go-Ahead propagation down the execution tree
    # ------------------------------------------------------------------
    def _release_go_ahead(self, q: int) -> None:
        if q in self._released:
            return
        self._released.add(q)
        self._propagate_go_ahead(q)

    def _propagate_go_ahead(self, q: int) -> None:
        send_link = self._send_link
        payload = (OP_GA, q)
        if self.pulse == q - 1:
            for lid in self._children_links:
                send_link(lid, payload, q)
            return
        reports_get = self._flow(q).reports.get
        for c, lid in self._child_pairs:
            if reports_get(c) is False:
                send_link(lid, payload, q)

    def _handle_ga(self, sender: NodeId, payload: Tuple) -> None:
        q = payload[1]
        if self.pulse == q:
            if q < self.threshold:
                self._send_joins()
            return
        self._propagate_go_ahead(q)

    # ------------------------------------------------------------------
    # aggregate results (base registrations, base Go-Aheads, checking)
    # ------------------------------------------------------------------
    def _on_agg_result(self, cid: int, tag: int, result: Any) -> None:
        kind = tag & 3
        if kind == _AGG_KIND_SREG:
            pending = self._sreg_pending.get(tag >> 2)
            if pending is not None and cid in pending:
                pending.discard(cid)
                self._maybe_source_send()
        elif kind == _AGG_KIND_SDEREG:
            q = tag >> 2
            pending = self._sdereg_pending.get(q)
            if pending is None or cid not in pending:
                return
            pending.discard(cid)
            flow = self._flows.get(q)
            if not pending and flow is not None and flow.assembled:
                self._release_go_ahead(q)
        elif kind == _AGG_KIND_CHECK:
            if cid in self._check_pending:
                self._check_pending.discard(cid)
                if not self._check_pending:
                    self._complete()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown aggregate result tag {tag!r}")

    def _contribute_check(self) -> None:
        for cid in self.registry.member_clusters(self.node_id, self.check_level):
            self.agg.contribute(cid, _CHECK_TAG, True)

    def _complete(self) -> None:
        if self.completed:
            return
        self.completed = True
        self.on_complete(self.pulse)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> None:
        op = payload[0]
        try:
            # The explicit sign check keeps a malformed negative opcode from
            # silently indexing the table from the end.
            handler = self._dispatch[op] if op >= 0 else None
        except (IndexError, TypeError):
            handler = None
        if handler is None:
            raise ValueError(f"unknown thresholded-BFS message {op!r}")
        handler(sender, payload)
