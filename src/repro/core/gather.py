"""Information gathering in covers (Section 3.1, Theorems 3.1 and 3.2).

Every node runs some process ``P`` (or learns it never will); the goal is
for each node to learn when *all nodes within distance d·num_stages* are done
with ``P``.  Stage ``s`` aggregates, per cluster of the d-cover, the AND of
"done with stage s-1" (stage 0 = locally done with ``P``) and broadcasts the
confirmation; a node finishes stage ``s`` when every cluster containing it
confirms.  With ``num_stages = 1`` this is Theorem 3.1; larger values give
the d·l-ball extension of Theorem 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..covers.cover import SparseCover
from ..net.graph import NodeId
from .cluster_ops import ClusterAggregateModule, and_merge
from .registration import ClusterView


class GatherModule:
    """Per-node engine for Theorem 3.1/3.2 over one sparse cover.

    Host contract: route payloads beginning with an aggregation opcode
    (:data:`repro.core.cluster_ops.OP_AGG_UP` / ``OP_AGG_DOWN``) here, call
    :meth:`start` once at protocol start and :meth:`mark_done` when the local
    process ``P`` finishes (or is known never to run).  ``on_complete(stage)``
    fires as the node learns each stage; stage ``num_stages`` means the whole
    ``d·num_stages``-ball is done.
    """

    def __init__(
        self,
        node_id: NodeId,
        cover: SparseCover,
        send: Callable[[NodeId, Tuple, Any], None],
        on_complete: Callable[[int], None],
        num_stages: int = 1,
        priority_fn: Optional[Callable[[Any], Any]] = None,
        name: str = "gather",
    ) -> None:
        if num_stages < 1:
            raise ValueError("need at least one stage")
        self.node_id = node_id
        self.cover = cover
        self.num_stages = num_stages
        self.on_complete = on_complete
        self.name = name
        views: Dict[int, ClusterView] = {}
        for tree in cover.clusters:
            if node_id in tree.parent:
                views[tree.cluster_id] = ClusterView(
                    cluster_id=tree.cluster_id,
                    parent=tree.parent[node_id],
                    children=tree.children.get(node_id, ()),
                )
        self._views = views
        self._member_clusters = tuple(
            tree.cluster_id for tree in cover.clusters if node_id in tree.members
        )
        self._tree_only_clusters = tuple(
            cid for cid in views if cid not in set(self._member_clusters)
        )
        if priority_fn is None:
            priority_fn = lambda tag: (tag[1],)  # stage index
        self.agg = ClusterAggregateModule(
            node_id=node_id,
            clusters=views,
            send=send,
            on_result=self._on_result,
            merge_fn=lambda tag: and_merge,
            priority_fn=priority_fn,
        )
        self._done_local = False
        self._started = False
        self._confirmed: Dict[int, Set[int]] = {s: set() for s in range(1, num_stages + 1)}
        self._stage_reached = 0
        self._contributed: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Contribute everything that is ready at protocol start."""
        self._started = True
        for stage in range(1, self.num_stages + 1):
            for cid in self._tree_only_clusters:
                self._contribute(cid, stage)
        self._advance()

    def mark_done(self) -> None:
        """The local process P finished (or will never run)."""
        if self._done_local:
            raise ValueError(f"node {self.node_id} marked done twice")
        self._done_local = True
        if self._started:
            self._advance()

    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        return self.agg.handle(sender, payload)

    @property
    def stage_reached(self) -> int:
        return self._stage_reached

    # ------------------------------------------------------------------
    def _contribute(self, cid: int, stage: int) -> None:
        if (cid, stage) in self._contributed:
            return
        self._contributed.add((cid, stage))
        self.agg.contribute(cid, (self.name, stage), True)

    def _ready_for_stage(self, stage: int) -> bool:
        """Ready to contribute to stage s = done with stage s-1."""
        if stage == 1:
            return self._done_local
        return self._stage_reached >= stage - 1

    def _advance(self) -> None:
        for stage in range(1, self.num_stages + 1):
            if self._ready_for_stage(stage):
                for cid in self._member_clusters:
                    self._contribute(cid, stage)

    def _on_result(self, cid: int, tag: Tuple, result: Any) -> None:
        _, stage = tag
        if not result:  # pragma: no cover - AND of Trues
            raise AssertionError("gather aggregation must be True")
        if cid not in set(self._member_clusters):
            return  # confirmations on relay-only trees carry no information
        self._confirmed[stage].add(cid)
        needed = set(self._member_clusters)
        while (
            self._stage_reached < self.num_stages
            and self._confirmed[self._stage_reached + 1] >= needed
        ):
            self._stage_reached += 1
            self.on_complete(self._stage_reached)
            self._advance()
