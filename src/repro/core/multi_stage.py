"""Multi-source 2^t·l-thresholded BFS by staging (Section 4.3, Theorem 4.17).

The BFS is split into ``num_stages`` sequential stages; stage ``T`` is a
2^t-thresholded multi-source BFS whose sources are the nodes at distance
exactly ``T * 2^t`` from the original sources (their stage-``T-1`` pulse was
exactly ``2^t``).  Nodes finalized by earlier stages participate *covered*
(decline joins, relay and contribute to barriers), which is the paper's
"node knows it is not a source in the T-th stage".

The paper interleaves a Theorem 3.1 gather between stages so that a node
enters stage ``T+1`` only when its 2^t-ball finished stage ``T``; here that
guarantee is delivered by the Section 4.2 registration barrier itself — a
stage-``T+1`` source sends its first proposal only once every cluster of the
``2^{l(p)+5}``-covers containing it completes the ``sreg`` convergecast, and
each such cluster covers the source's whole 2^t-ball, whose nodes contribute
only after locally finishing stage ``T``.

Per Remark 4.18 this also yields d-thresholded BFS for arbitrary ``d``
(``distance_filter``): distances above ``d`` are reported as infinity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from .bfs_runner import BFSOutcome, registry_for_threshold
from .registry import CoverRegistry
from .thresholded_bfs import UNREACHED, ThresholdedBFSCore


class MultiStageBFSNode:
    """Per-node driver chaining ``num_stages`` thresholded-BFS instances."""

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Tuple[NodeId, ...],
        registry: CoverRegistry,
        stage_threshold: int,
        num_stages: int,
        is_original_source: bool,
        send,  # (to, payload, priority_tuple) -> None
        on_final,  # (distance: float, parent: Optional[NodeId]) -> None
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.registry = registry
        self.stage_threshold = stage_threshold
        self.num_stages = num_stages
        self.is_original_source = is_original_source
        self._send = send
        self.on_final = on_final
        self.cores: Dict[int, ThresholdedBFSCore] = {}
        self.distance: Optional[int] = None
        self.parent: Optional[NodeId] = None
        for stage in range(num_stages):
            self.cores[stage] = self._make_core(stage)

    def _make_core(self, stage: int) -> ThresholdedBFSCore:
        return ThresholdedBFSCore(
            node_id=self.node_id,
            neighbors=self.neighbors,
            registry=self.registry,
            threshold=self.stage_threshold,
            send=lambda to, payload, s, stage=stage: self._send(
                to, ("ms", stage, payload), (stage, s)
            ),
            on_complete=lambda pulse, stage=stage: self._stage_done(stage, pulse),
        )

    def start(self) -> None:
        self.cores[0].activate(self.is_original_source)

    def handle(self, sender: NodeId, payload: Tuple) -> None:
        kind, stage, inner = payload
        if kind != "ms":
            raise ValueError(f"unexpected payload {payload!r}")
        self.cores[stage].handle(sender, inner)

    def _stage_done(self, stage: int, pulse: Optional[int]) -> None:
        theta = self.stage_threshold
        if pulse is not None and self.distance is None:
            self.distance = stage * theta + pulse
            self.parent = self.cores[stage].parent
        next_stage = stage + 1
        if next_stage < self.num_stages:
            is_source = pulse == theta
            covered = self.distance is not None and not is_source
            self.cores[next_stage].activate(is_source, covered=covered)
        else:
            self.on_final(
                self.distance if self.distance is not None else None, self.parent
            )


class MultiStageBFSProcess(Process):
    """Standalone runner wrapper (bound via a subclass namespace)."""

    registry: CoverRegistry
    sources: FrozenSet[NodeId]
    stage_threshold: int
    num_stages: int
    distance_filter: Optional[int]

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.node = MultiStageBFSNode(
            node_id=ctx.node_id,
            neighbors=ctx.neighbors,
            registry=self.registry,
            stage_threshold=self.stage_threshold,
            num_stages=self.num_stages,
            is_original_source=ctx.node_id in self.sources,
            send=lambda to, payload, priority: ctx.send(to, payload, priority),
            on_final=self._on_final,
        )

    def _on_final(self, distance: Optional[int], parent: Optional[NodeId]) -> None:
        limit = self.distance_filter
        if distance is None or (limit is not None and distance > limit):
            self.ctx.set_output((UNREACHED, None))
        else:
            self.ctx.set_output((distance, parent))

    def on_start(self) -> None:
        self.node.start()

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.node.handle(sender, payload)


def run_multi_stage_bfs(
    graph: Graph,
    sources: Iterable[NodeId] | NodeId,
    stage_threshold: int,
    num_stages: int,
    delay_model: DelayModel,
    registry: Optional[CoverRegistry] = None,
    distance_filter: Optional[int] = None,
    builder: str = "ap",
    max_events: int = 50_000_000,
) -> BFSOutcome:
    """Theorem 4.17: (2^t * num_stages)-thresholded multi-source BFS.

    ``distance_filter`` implements Remark 4.18: any d <= 2^t * num_stages.
    """
    source_set = frozenset((sources,)) if isinstance(sources, int) else frozenset(sources)
    if not source_set:
        raise ValueError("at least one source required")
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if distance_filter is not None and distance_filter > stage_threshold * num_stages:
        raise ValueError("distance_filter exceeds the covered range")
    if registry is None:
        registry = registry_for_threshold(graph, stage_threshold, builder)
    namespace = dict(
        registry=registry,
        sources=source_set,
        stage_threshold=stage_threshold,
        num_stages=num_stages,
        distance_filter=distance_filter,
    )
    process_cls = type("BoundMultiStageBFS", (MultiStageBFSProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"BFS did not finish: {result.stop_reason}")
    missing = set(graph.nodes) - set(result.outputs)
    if missing:
        raise RuntimeError(f"BFS deadlocked: nodes {sorted(missing)} never completed")
    distances = {v: result.outputs[v][0] for v in graph.nodes}
    parents = {v: result.outputs[v][1] for v in graph.nodes}
    return BFSOutcome(distances=distances, parents=parents, result=result)
