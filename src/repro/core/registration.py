"""Registration / deregistration / Go-Ahead in cluster trees (Section 3.2).

This is the paper's fix of the congestion bug in [AP90a]: instead of routing
every registration to the cluster root (Omega(n) congestion on the root
edge), registration marks the path to the root *dirty* with a recursive wave
``R``, deregistration converts dirty marks to *waiting* with a wave ``D``,
and the root's ``Go-Ahead`` walks back down the waiting edges.

The module multiplexes many independent registration stages: state is keyed
by ``(cluster_id, tag)`` where the tag is the pulse number (one stage per
pulse, Lemma 2.5).  On the wire the pair travels as a single *packed key*
(``(cluster_id << 32) | tag`` whenever the tag is a small non-negative int
— the synchronizer stack's pulse tags; a plain tuple otherwise), so a
wave message is ``(op, key)``: handlers index their stage dict with one
pre-hashed int instead of building and hashing a tuple per message
(DESIGN.md §8).  Messages carry a host-supplied priority so lower stages
preempt higher ones on shared links.

Guarantees implemented (and asserted by the tests verbatim):

* Register Guarantee 1 (Lemma 3.4): when ``v`` receives Go-Ahead, every node
  that registered before ``v`` deregistered has already deregistered;
  registration/deregistration cost O(h) time and messages.
* Register Guarantee 2 (Lemma 3.5): once registrations stop and all
  registered nodes have deregistered, every registered node receives its
  Go-Ahead within O(h) time, with Go-Ahead messages proportional to
  registration traffic (each Go-Ahead message consumes one waiting mark).

One deviation from the paper's prose, required for message-passing
correctness (see DESIGN.md §5): ``D(u)`` also terminates immediately while
``u``'s *own* registration is still in flight (state ``registering``) — the
paper's "if u is still registered" check starts one message too late
otherwise, and a deregistration wave could erase the dirty mark that ``u``'s
pending registration depends on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..net.graph import NodeId


class _IdentityLinks:
    """Fallback link map for hosts wired by node id (DESIGN.md §8).

    Resolves every destination to itself, so ``send_link(links[to], ...)``
    degrades to the node-id ``send`` for hosts that do not run on the
    transport's dense link table (standalone module tests, the multi-stage
    and full-BFS wrappers with their tagging send closures).
    """

    __slots__ = ()

    def __getitem__(self, key: NodeId) -> NodeId:
        return key


IDENTITY_LINKS = _IdentityLinks()


def resolve_link_pair(owner: str, send, links, send_link):
    """Resolve the optional ``links``/``send_link`` pair of a protocol module.

    Returns ``(links, send_link)`` — the supplied pair when both halves are
    present, else the node-id fallback (``IDENTITY_LINKS`` + ``send``).
    Supplying exactly one half is almost certainly a wiring bug (the caller
    meant to use the link-table fast path and silently is not), so that case
    emits a :class:`RuntimeWarning` naming the missing half instead of
    degrading invisibly.
    """
    if send_link is None or links is None:
        if (links is None) != (send_link is None):
            missing = "links" if links is None else "send_link"
            supplied = "send_link" if links is None else "links"
            warnings.warn(
                f"{owner}: {supplied!r} supplied without {missing!r}; the"
                " link-table fast path needs both, falling back to node-id"
                " sends (IDENTITY_LINKS)",
                RuntimeWarning,
                stacklevel=3,
            )
        return IDENTITY_LINKS, send
    return links, send_link

# Edge marks (our node's view of the edge to parent / to each child).
CLEAN = "clean"
DIRTY = "dirty"
WAITING = "waiting"

# Node registration lifecycle per (cluster, tag).
NONE = "none"
REGISTERING = "registering"
REGISTERED = "registered"
DEREGISTERED = "deregistered"
FREE = "free"

#: Wire opcodes (DESIGN.md §6): small consecutive ints continuing the shared
#: module range started by :mod:`repro.core.cluster_ops` (0..1), so a host
#: can dispatch every module message through one tuple index.  Hosts number
#: their private kinds from 6.
OP_REG_UP = 2
OP_REG_DONE = 3
OP_REG_DEREG = 4
OP_REG_GO_AHEAD = 5

_REG_OPS = (OP_REG_UP, OP_REG_DONE, OP_REG_DEREG, OP_REG_GO_AHEAD)

Tag = Any
#: Packed (cluster_id, tag) wire key — an int for int tags, else a tuple.
Key = Union[int, Tuple[int, Tag]]
SendFn = Callable[[NodeId, Tuple, Any], None]

_TAG_BITS = 32
_TAG_MASK = (1 << _TAG_BITS) - 1


def pack_key(cluster_id: int, tag: Tag) -> Key:
    """Pack one (cluster, tag) identity into its wire/dict key.

    Int tags (the synchronizer stack's pulse numbers) pack into one int —
    pre-hashed on the wire, cheaper to look up than a tuple per message;
    anything else falls back to the generic tuple key.
    """
    if type(tag) is int and 0 <= tag <= _TAG_MASK:
        return (cluster_id << _TAG_BITS) | tag
    return (cluster_id, tag)


def unpack_key(key: Key) -> Tuple[int, Tag]:
    """Inverse of :func:`pack_key`."""
    if type(key) is int:
        return key >> _TAG_BITS, key & _TAG_MASK
    return key


class _StageState:
    """Per-(cluster, tag) registration state at one node.

    Plain slots, and *pooled* (DESIGN.md §10): the synchronizer stack burns
    about one stage per six messages, so terminal-clean stages are recycled
    through the module's free list and :meth:`reuse` resets a slot in place
    — the child-mark dict and invoker list are cleared, not reallocated.
    """

    __slots__ = ("key", "cluster_id", "tag", "view", "state", "finished",
                 "parent_mark", "child_marks", "dirty_children",
                 "waiting_children", "r_in_flight", "pending_child_invokers",
                 "local_pending", "priority", "parent_link", "poisoned")

    def __init__(self, key: Key, cluster_id: int, tag: Tag,
                 view: "ClusterView", finished: bool, priority: Any,
                 parent_link: Optional[int]) -> None:
        # Only the two containers are created here; every scalar field is
        # set by reuse(), so the field list exists exactly once and a slot
        # added to one path cannot silently go stale on the other.
        self.child_marks: Dict[NodeId, str] = {}
        # Children owed an R confirmation, stored as resolved link ids (they
        # are only ever used to emit).
        self.pending_child_invokers: List[int] = []
        self.reuse(key, cluster_id, tag, view, finished, priority, parent_link)

    def reuse(self, key: Key, cluster_id: int, tag: Tag,
              view: "ClusterView", finished: bool, priority: Any,
              parent_link: Optional[int]) -> None:
        """Reset a (recycled or brand-new) slot for a new (cluster, tag).

        A slot only reaches the free list in the terminal-clean state (all
        marks CLEAN, nothing in flight), which is behaviorally identical to
        a fresh stage; this reset makes it *literally* fresh.
        """
        # The identity travels with the stage so emits reuse the packed
        # wire key and callbacks never decode.
        self.key = key
        self.cluster_id = cluster_id
        self.tag = tag
        self.view = view  # this node's tree view, bound at creation
        self.state = NONE
        self.finished = finished
        self.parent_mark = CLEAN
        self.child_marks.clear()
        # Counts of DIRTY / WAITING entries in child_marks, maintained
        # incrementally so the wave handlers need no per-call scan of the
        # marks (and the pool's completion test is a pair of int loads).
        self.dirty_children = 0
        self.waiting_children = 0
        self.r_in_flight = False
        self.pending_child_invokers.clear()
        self.local_pending = False
        # The stage's link priority and parent link id, resolved once at
        # creation so emits skip the per-tag / per-destination dict probes.
        self.priority = priority
        self.parent_link = parent_link
        # Set by prune_child when a node crash touched this stage: a
        # poisoned slot's counters no longer tell the full wave story, so
        # it must never reach the free list looking terminal-clean.
        self.poisoned = False


@dataclass(frozen=True)
class ClusterView:
    """One node's local view of one cluster tree."""

    cluster_id: int
    parent: Optional[NodeId]  # None iff this node is the root
    children: Tuple[NodeId, ...]

    @property
    def is_root(self) -> bool:
        return self.parent is None


class RegistrationModule:
    """Per-node engine for Section 3.2, multiplexed over (cluster, tag) stages.

    Host protocol contract:

    * route every message whose payload starts with one of the registration
      opcodes (:data:`OP_REG_UP` .. :data:`OP_REG_GO_AHEAD`) to
      :meth:`handle` — or, when the host dispatches on opcodes itself,
      straight to the per-kind ``handle_*`` methods;
    * call :meth:`register` / :meth:`deregister` at most once each per
      (cluster, tag);
    * supply ``priority_fn(tag)`` mapping a tag to the link priority of its
      stage, and the two callbacks.
    """

    def __init__(
        self,
        node_id: NodeId,
        clusters: Dict[int, ClusterView],
        send: SendFn,
        on_registered: Callable[[int, Tag], None],
        on_go_ahead: Callable[[int, Tag], None],
        priority_fn: Callable[[Tag], Any],
        links: Optional[Mapping[NodeId, int]] = None,
        send_link: Optional[Callable[[int, Tuple, Any], None]] = None,
        pool: bool = True,
    ) -> None:
        """``links``/``send_link`` wire the module onto the transport's
        dense link table (``ProcessContext.links`` / ``.send_link``): stages
        resolve their tree destinations to link ids once and every emit
        takes the int-indexed fast path.  Hosts that wrap ``send`` (payload
        tagging, standalone tests) omit them and keep node-id sends —
        supplying exactly one half warns (see :func:`resolve_link_pair`).

        ``pool`` (default on) recycles completed stage slots through a free
        list (DESIGN.md §10).  A stage is recycled only once it is
        *terminal-clean* — every edge mark CLEAN, no wave in flight, this
        node's own register/deregister cycle over — where its observable
        behavior is identical to a fresh stage's, so schedules are
        byte-identical either way (pinned by the equivalence suites and the
        pooled-vs-fresh property tests).  Two things do become invisible
        once a stage completes and its slot is recycled: :meth:`state_of`
        reports ``NONE`` instead of ``FREE``, and the exactly-once
        :meth:`register` contract is only checkable while the stage is
        live (a contract-violating re-register after completion builds a
        fresh stage instead of raising).  Pass ``pool=False`` to retain
        every stage for inspection and full contract checking.
        """
        self.node_id = node_id
        self.clusters = clusters
        # The ctor view dict is never mutated (prunes are copy-on-write), so
        # it doubles as the pristine topology a readmitted child is restored
        # from (DESIGN.md §15).
        self._pristine_clusters = clusters
        self._links, self._send_link = resolve_link_pair(
            "RegistrationModule", send, links, send_link
        )
        self.on_registered = on_registered
        self.on_go_ahead = on_go_ahead
        self.priority_fn = priority_fn
        self._stages: Dict[Key, _StageState] = {}
        self._pool = pool
        self._free: List[_StageState] = []
        self.messages_sent = 0

    # ------------------------------------------------------------------
    def _make_stage(self, key: Key) -> _StageState:
        """Stage miss path — one frame whether the trigger is a wire
        message (the common case: ~98% of stage creations in a sync-BFS
        run arrive by wire) or a local register/deregister."""
        cluster_id, tag = unpack_key(key)
        view = self.clusters.get(cluster_id)
        if view is None:
            raise ValueError(
                f"node {self.node_id} is not in cluster {cluster_id}"
            )
        parent = view.parent
        parent_link = None if parent is None else self._links[parent]
        free = self._free
        if free:
            # Pool hit: reset a terminal-clean slot in place (§10).
            stage = free.pop()
            stage.reuse(key, cluster_id, tag, view, parent is None,
                        self.priority_fn(tag), parent_link)
        else:
            stage = _StageState(
                key, cluster_id, tag, view, parent is None,
                self.priority_fn(tag), parent_link,
            )
        self._stages[key] = stage
        return stage

    def _stage(self, cluster_id: int, tag: Tag) -> _StageState:
        key = pack_key(cluster_id, tag)
        stage = self._stages.get(key)
        if stage is None:
            stage = self._make_stage(key)
        return stage

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def register(self, cluster_id: int, tag: Tag) -> None:
        """Start registering this node; ``on_registered`` fires when done."""
        stage = self._stage(cluster_id, tag)
        if stage.state != NONE:
            raise ValueError(
                f"node {self.node_id} double-registers in {cluster_id}/{tag}"
            )
        stage.state = REGISTERING
        if stage.finished:
            stage.state = REGISTERED
            self.on_registered(cluster_id, tag)
            return
        stage.local_pending = True
        self._invoke_r(stage)

    def deregister(self, cluster_id: int, tag: Tag) -> None:
        """Mark deregistered and launch the D wave; Go-Ahead arrives later."""
        stage = self._stage(cluster_id, tag)
        if stage.state != REGISTERED:
            raise ValueError(
                f"node {self.node_id} deregisters in {cluster_id}/{tag}"
                f" from state {stage.state!r}"
            )
        stage.state = DEREGISTERED
        if stage.view.parent is None:
            self._root_maybe_go_ahead(stage)
        else:
            self._run_d(stage)

    def state_of(self, cluster_id: int, tag: Tag) -> str:
        """This node's lifecycle state for one stage.

        With pooling (the default), a completed stage's slot is recycled,
        so this reports ``NONE`` rather than ``FREE`` once the stage is
        terminal-clean; construct with ``pool=False`` to retain slots.
        """
        stage = self._stages.get(pack_key(cluster_id, tag))
        return NONE if stage is None else stage.state

    # ------------------------------------------------------------------
    # R wave
    # ------------------------------------------------------------------
    def _invoke_r(self, stage: _StageState) -> None:
        if stage.r_in_flight:
            return
        stage.parent_mark = DIRTY
        stage.r_in_flight = True
        self.messages_sent += 1
        self._send_link(
            stage.parent_link, (OP_REG_UP, stage.key), stage.priority
        )

    def handle_reg_up(self, sender: NodeId, payload: Tuple) -> None:
        """A child's R wave — ``(OP_REG_UP, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._make_stage(key)
        marks = stage.child_marks
        prev = marks.get(sender)
        if prev != DIRTY:
            stage.dirty_children += 1
            if prev == WAITING:
                stage.waiting_children -= 1
        marks[sender] = DIRTY
        if stage.finished:
            self.messages_sent += 1
            self._send_link(
                self._links[sender], (OP_REG_DONE, key), stage.priority
            )
            return
        stage.pending_child_invokers.append(self._links[sender])
        # _invoke_r, inlined (one frame per R message matters here).
        if not stage.r_in_flight:
            stage.parent_mark = DIRTY
            stage.r_in_flight = True
            self.messages_sent += 1
            self._send_link(
                stage.parent_link, (OP_REG_UP, key), stage.priority
            )

    def handle_reg_done(self, sender: NodeId, payload: Tuple) -> None:
        """The parent's R confirmation — ``(OP_REG_DONE, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._make_stage(key)
        stage.r_in_flight = False
        # The parent's subtree-path to the root is dirty, hence so is ours.
        stage.finished = True
        if stage.pending_child_invokers:
            send_link = self._send_link
            done = (OP_REG_DONE, key)
            priority = stage.priority
            for child_link in stage.pending_child_invokers:
                self.messages_sent += 1
                send_link(child_link, done, priority)
            stage.pending_child_invokers.clear()
        if stage.local_pending:
            stage.local_pending = False
            stage.state = REGISTERED
            self.on_registered(stage.cluster_id, stage.tag)

    # ------------------------------------------------------------------
    # D wave
    # ------------------------------------------------------------------
    def _run_d(self, stage: _StageState) -> None:
        if stage.dirty_children:
            return
        if stage.view.parent is None:
            return
        if stage.state in (REGISTERING, REGISTERED):
            return
        if stage.parent_mark != DIRTY:
            # A D wave may arrive after our parent edge already turned
            # waiting (duplicate wave through another child); nothing to do.
            return
        stage.parent_mark = WAITING
        stage.finished = False
        self.messages_sent += 1
        self._send_link(
            stage.parent_link, (OP_REG_DEREG, stage.key), stage.priority
        )

    def handle_dereg(self, sender: NodeId, payload: Tuple) -> None:
        """A child's D wave — ``(OP_REG_DEREG, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._make_stage(key)
        marks = stage.child_marks
        prev = marks.get(sender)
        if prev == DIRTY:
            stage.dirty_children -= 1
        if prev != WAITING:
            stage.waiting_children += 1
        marks[sender] = WAITING
        if stage.view.parent is None:
            self._root_maybe_go_ahead(stage)
        elif not stage.dirty_children:
            # _run_d, inlined (the parent-is-None arm is unreachable here);
            # same checks in the same order.
            state = stage.state
            if state == REGISTERING or state == REGISTERED:
                return
            if stage.parent_mark != DIRTY:
                return
            stage.parent_mark = WAITING
            stage.finished = False
            self.messages_sent += 1
            self._send_link(
                stage.parent_link, (OP_REG_DEREG, key), stage.priority
            )

    # ------------------------------------------------------------------
    # Go-Ahead wave
    # ------------------------------------------------------------------
    def _root_maybe_go_ahead(self, stage: _StageState) -> None:
        if stage.dirty_children:
            return
        if stage.state in (REGISTERING, REGISTERED):
            # The root's own registration holds the cluster open.
            return
        self._run_g(stage)

    def _run_g(self, stage: _StageState) -> None:
        if stage.state == DEREGISTERED:
            stage.state = FREE
            self.on_go_ahead(stage.cluster_id, stage.tag)
        if stage.waiting_children:
            marks = stage.child_marks
            links = self._links
            send_link = self._send_link
            payload = (OP_REG_GO_AHEAD, stage.key)
            priority = stage.priority
            # Iteration stays in ascending *node id* order (the emit order
            # is part of the pinned schedule); single-child stages — most
            # of a cycle/grid tree — skip the sort.  Only mark values are
            # mutated, so iterating the dict directly is safe.
            items = sorted(marks.items()) if len(marks) > 1 else marks.items()
            sent = 0
            for child, mark in items:
                if mark == WAITING:
                    marks[child] = CLEAN
                    sent += 1
                    send_link(links[child], payload, priority)
            self.messages_sent += sent
            stage.waiting_children = 0
        # Terminal-clean: every mark CLEAN, no wave in flight, and this
        # node's own register/deregister cycle over (state NONE for pure
        # relays, FREE after a Go-Ahead).  Nothing the stage can still
        # receive distinguishes it from a fresh slot, so recycle it — the
        # next stage at this node resets it in place instead of allocating.
        if (self._pool and not stage.dirty_children
                and stage.parent_mark == CLEAN and not stage.r_in_flight
                and not stage.local_pending and not stage.poisoned
                and (stage.state is NONE or stage.state is FREE)):
            del self._stages[stage.key]
            self._free.append(stage)

    # ------------------------------------------------------------------
    # recovery (DESIGN.md §11)
    # ------------------------------------------------------------------
    def prune_child(self, dead: NodeId) -> None:
        """Excise a crashed neighbor from every cluster view and live stage.

        Detect-and-degrade semantics: the dead node's subtree is abandoned.
        Its marks are erased (``dirty_children`` / ``waiting_children``
        recomputed incrementally, exactly as the wave handlers maintain
        them), its owed R confirmations are dropped, and any wave the dead
        child was holding up is re-driven — a root stage re-checks
        Go-Ahead, a relay stage re-runs ``D``.  Stages whose *parent* is
        the corpse are orphans: they can never complete and are only
        poisoned (satellite: a crash during a pooled slot's lifetime must
        never return a live-looking slot to the free list — every stage a
        crash touched is marked ``poisoned`` and excluded from recycling).

        Cluster views are pruned copy-on-write: the view dicts may be
        shared with sibling modules on this node and cached across sweep
        replays, so they are never mutated in place.
        """
        dead_link = self._links[dead]
        clusters = dict(self.clusters)
        changed = False
        for cid, view in clusters.items():
            if dead in view.children:
                clusters[cid] = ClusterView(
                    cluster_id=cid,
                    parent=view.parent,
                    children=tuple(c for c in view.children if c != dead),
                )
                changed = True
        if changed:
            self.clusters = clusters
        for stage in list(self._stages.values()):
            view = stage.view
            if view.parent == dead:
                stage.poisoned = True
                continue
            prev = stage.child_marks.pop(dead, None)
            if prev is None and dead not in view.children:
                # The corpse plays no role in this stage's tree.
                continue
            stage.poisoned = True
            new_view = self.clusters.get(stage.cluster_id)
            if new_view is not None:
                stage.view = new_view
            if prev == DIRTY:
                stage.dirty_children -= 1
            elif prev == WAITING:
                stage.waiting_children -= 1
            if stage.pending_child_invokers:
                stage.pending_child_invokers[:] = [
                    lnk for lnk in stage.pending_child_invokers
                    if lnk != dead_link
                ]
            if stage.view.parent is None:
                self._root_maybe_go_ahead(stage)
            elif not stage.dirty_children:
                self._run_d(stage)

    def readmit_child(self, returned: NodeId) -> None:
        """Restore a re-joined child into the cluster views (DESIGN.md §15).

        The inverse of :meth:`prune_child`, restricted to topology: the
        child re-enters every view it held in the pristine (construction
        time) trees — in its original sibling position, so stages created
        after the readmission see the same deterministic child order a
        never-crashed run would.  Live stages are *not* rewound: the waves
        they carry re-closed over the survivors when the crash was
        detected, and un-closing them would make a barrier wait on a
        contribution the fresh incarnation (which starts with blank
        protocol state) never sends.  Poisoned slots stay poisoned — the
        crash happened; readmission does not launder the slot back into
        the free list.  Idempotent per neighbor.
        """
        pristine = self._pristine_clusters
        clusters = dict(self.clusters)
        changed = False
        for cid, view in clusters.items():
            pv = pristine.get(cid)
            if (pv is None or returned not in pv.children
                    or returned in view.children):
                continue
            keep = set(view.children)
            keep.add(returned)
            clusters[cid] = ClusterView(
                cluster_id=cid,
                parent=view.parent,
                children=tuple(c for c in pv.children if c in keep),
            )
            changed = True
        if changed:
            self.clusters = clusters

    def handle_go_ahead(self, sender: NodeId, payload: Tuple) -> None:
        """The parent's Go-Ahead — ``(OP_REG_GO_AHEAD, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._make_stage(key)
        if stage.parent_mark != WAITING:
            # A registration wave re-dirtied this edge while the Go-Ahead was
            # in flight; drop it — a newer Go-Ahead will follow (Lemma 3.5's
            # case analysis).
            return
        stage.parent_mark = CLEAN
        self._run_g(stage)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        """Process one registration message; returns False if not ours."""
        if not (isinstance(payload, tuple) and payload and payload[0] in _REG_OPS):
            return False
        self.handle_known(sender, payload)
        return True

    def handle_known(self, sender: NodeId, payload: Tuple) -> None:
        """Like :meth:`handle` for hosts that already routed on the opcode."""
        op = payload[0]
        if op == OP_REG_UP:
            self.handle_reg_up(sender, payload)
        elif op == OP_REG_DONE:
            self.handle_reg_done(sender, payload)
        elif op == OP_REG_DEREG:
            self.handle_dereg(sender, payload)
        elif op == OP_REG_GO_AHEAD:
            self.handle_go_ahead(sender, payload)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown registration message kind {op!r}")


def cluster_views_for(
    cover_clusters: Dict[int, "object"], node_id: NodeId
) -> Dict[int, ClusterView]:
    """Extract this node's :class:`ClusterView` for every tree it appears in.

    ``cover_clusters`` maps cluster id to a :class:`~repro.covers.ClusterTree`.
    """
    views: Dict[int, ClusterView] = {}
    for cid, tree in cover_clusters.items():
        if node_id in tree.parent:
            views[cid] = ClusterView(
                cluster_id=cid,
                parent=tree.parent[node_id],
                children=tree.children.get(node_id, ()),
            )
    return views
