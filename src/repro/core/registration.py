"""Registration / deregistration / Go-Ahead in cluster trees (Section 3.2).

This is the paper's fix of the congestion bug in [AP90a]: instead of routing
every registration to the cluster root (Omega(n) congestion on the root
edge), registration marks the path to the root *dirty* with a recursive wave
``R``, deregistration converts dirty marks to *waiting* with a wave ``D``,
and the root's ``Go-Ahead`` walks back down the waiting edges.

The module multiplexes many independent registration stages: state is keyed
by ``(cluster_id, tag)`` where the tag is the pulse number (one stage per
pulse, Lemma 2.5).  On the wire the pair travels as a single *packed key*
(``(cluster_id << 32) | tag`` whenever the tag is a small non-negative int
— the synchronizer stack's pulse tags; a plain tuple otherwise), so a
wave message is ``(op, key)``: handlers index their stage dict with one
pre-hashed int instead of building and hashing a tuple per message
(DESIGN.md §8).  Messages carry a host-supplied priority so lower stages
preempt higher ones on shared links.

Guarantees implemented (and asserted by the tests verbatim):

* Register Guarantee 1 (Lemma 3.4): when ``v`` receives Go-Ahead, every node
  that registered before ``v`` deregistered has already deregistered;
  registration/deregistration cost O(h) time and messages.
* Register Guarantee 2 (Lemma 3.5): once registrations stop and all
  registered nodes have deregistered, every registered node receives its
  Go-Ahead within O(h) time, with Go-Ahead messages proportional to
  registration traffic (each Go-Ahead message consumes one waiting mark).

One deviation from the paper's prose, required for message-passing
correctness (see DESIGN.md §5): ``D(u)`` also terminates immediately while
``u``'s *own* registration is still in flight (state ``registering``) — the
paper's "if u is still registered" check starts one message too late
otherwise, and a deregistration wave could erase the dirty mark that ``u``'s
pending registration depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..net.graph import NodeId


class _IdentityLinks:
    """Fallback link map for hosts wired by node id (DESIGN.md §8).

    Resolves every destination to itself, so ``send_link(links[to], ...)``
    degrades to the node-id ``send`` for hosts that do not run on the
    transport's dense link table (standalone module tests, the multi-stage
    and full-BFS wrappers with their tagging send closures).
    """

    __slots__ = ()

    def __getitem__(self, key: NodeId) -> NodeId:
        return key


IDENTITY_LINKS = _IdentityLinks()

# Edge marks (our node's view of the edge to parent / to each child).
CLEAN = "clean"
DIRTY = "dirty"
WAITING = "waiting"

# Node registration lifecycle per (cluster, tag).
NONE = "none"
REGISTERING = "registering"
REGISTERED = "registered"
DEREGISTERED = "deregistered"
FREE = "free"

#: Wire opcodes (DESIGN.md §6): small consecutive ints continuing the shared
#: module range started by :mod:`repro.core.cluster_ops` (0..1), so a host
#: can dispatch every module message through one tuple index.  Hosts number
#: their private kinds from 6.
OP_REG_UP = 2
OP_REG_DONE = 3
OP_REG_DEREG = 4
OP_REG_GO_AHEAD = 5

_REG_OPS = (OP_REG_UP, OP_REG_DONE, OP_REG_DEREG, OP_REG_GO_AHEAD)

Tag = Any
#: Packed (cluster_id, tag) wire key — an int for int tags, else a tuple.
Key = Union[int, Tuple[int, Tag]]
SendFn = Callable[[NodeId, Tuple, Any], None]

_TAG_BITS = 32
_TAG_MASK = (1 << _TAG_BITS) - 1


def pack_key(cluster_id: int, tag: Tag) -> Key:
    """Pack one (cluster, tag) identity into its wire/dict key.

    Int tags (the synchronizer stack's pulse numbers) pack into one int —
    pre-hashed on the wire, cheaper to look up than a tuple per message;
    anything else falls back to the generic tuple key.
    """
    if type(tag) is int and 0 <= tag <= _TAG_MASK:
        return (cluster_id << _TAG_BITS) | tag
    return (cluster_id, tag)


def unpack_key(key: Key) -> Tuple[int, Tag]:
    """Inverse of :func:`pack_key`."""
    if type(key) is int:
        return key >> _TAG_BITS, key & _TAG_MASK
    return key


class _StageState:
    """Per-(cluster, tag) registration state at one node (plain slots:
    allocated per stage on the hot path)."""

    __slots__ = ("key", "cluster_id", "tag", "view", "state", "finished",
                 "parent_mark", "child_marks", "dirty_children",
                 "r_in_flight", "pending_child_invokers", "local_pending",
                 "priority", "parent_link")

    def __init__(self, key: Key, cluster_id: int, tag: Tag,
                 view: "ClusterView", finished: bool, priority: Any,
                 parent_link: Optional[int]) -> None:
        # The identity travels with the stage so emits reuse the packed
        # wire key and callbacks never decode.
        self.key = key
        self.cluster_id = cluster_id
        self.tag = tag
        self.view = view  # this node's tree view, bound at creation
        self.state = NONE
        self.finished = finished
        self.parent_mark = CLEAN
        self.child_marks: Dict[NodeId, str] = {}
        # Count of DIRTY entries in child_marks, maintained incrementally so
        # the wave handlers need no per-call scan of the marks.
        self.dirty_children = 0
        self.r_in_flight = False
        # Children owed an R confirmation, stored as resolved link ids (they
        # are only ever used to emit).
        self.pending_child_invokers: List[int] = []
        self.local_pending = False
        # The stage's link priority and parent link id, resolved once at
        # creation so emits skip the per-tag / per-destination dict probes.
        self.priority = priority
        self.parent_link = parent_link


@dataclass(frozen=True)
class ClusterView:
    """One node's local view of one cluster tree."""

    cluster_id: int
    parent: Optional[NodeId]  # None iff this node is the root
    children: Tuple[NodeId, ...]

    @property
    def is_root(self) -> bool:
        return self.parent is None


class RegistrationModule:
    """Per-node engine for Section 3.2, multiplexed over (cluster, tag) stages.

    Host protocol contract:

    * route every message whose payload starts with one of the registration
      opcodes (:data:`OP_REG_UP` .. :data:`OP_REG_GO_AHEAD`) to
      :meth:`handle` — or, when the host dispatches on opcodes itself,
      straight to the per-kind ``handle_*`` methods;
    * call :meth:`register` / :meth:`deregister` at most once each per
      (cluster, tag);
    * supply ``priority_fn(tag)`` mapping a tag to the link priority of its
      stage, and the two callbacks.
    """

    def __init__(
        self,
        node_id: NodeId,
        clusters: Dict[int, ClusterView],
        send: SendFn,
        on_registered: Callable[[int, Tag], None],
        on_go_ahead: Callable[[int, Tag], None],
        priority_fn: Callable[[Tag], Any],
        links: Optional[Mapping[NodeId, int]] = None,
        send_link: Optional[Callable[[int, Tuple, Any], None]] = None,
    ) -> None:
        """``links``/``send_link`` wire the module onto the transport's
        dense link table (``ProcessContext.links`` / ``.send_link``): stages
        resolve their tree destinations to link ids once and every emit
        takes the int-indexed fast path.  Hosts that wrap ``send`` (payload
        tagging, standalone tests) omit them and keep node-id sends."""
        self.node_id = node_id
        self.clusters = clusters
        if send_link is None or links is None:
            # Either half missing degrades the whole pair to node-id sends
            # (a lone send_link with no link map could only fail later and
            # farther from the misconfiguration site).
            links = IDENTITY_LINKS
            send_link = send
        self._links = links
        self._send_link = send_link
        self.on_registered = on_registered
        self.on_go_ahead = on_go_ahead
        self.priority_fn = priority_fn
        self._stages: Dict[Key, _StageState] = {}
        self.messages_sent = 0

    # ------------------------------------------------------------------
    def _make_stage(self, key: Key, cluster_id: int, tag: Tag) -> _StageState:
        view = self.clusters.get(cluster_id)
        if view is None:
            raise ValueError(
                f"node {self.node_id} is not in cluster {cluster_id}"
            )
        parent = view.parent
        stage = _StageState(
            key, cluster_id, tag, view, parent is None, self.priority_fn(tag),
            None if parent is None else self._links[parent],
        )
        self._stages[key] = stage
        return stage

    def _stage(self, cluster_id: int, tag: Tag) -> _StageState:
        key = pack_key(cluster_id, tag)
        stage = self._stages.get(key)
        if stage is None:
            stage = self._make_stage(key, cluster_id, tag)
        return stage

    def _stage_from_wire(self, key: Key) -> _StageState:
        """Handler miss path: first message of a stage at this node."""
        cluster_id, tag = unpack_key(key)
        return self._make_stage(key, cluster_id, tag)

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def register(self, cluster_id: int, tag: Tag) -> None:
        """Start registering this node; ``on_registered`` fires when done."""
        stage = self._stage(cluster_id, tag)
        if stage.state != NONE:
            raise ValueError(
                f"node {self.node_id} double-registers in {cluster_id}/{tag}"
            )
        stage.state = REGISTERING
        if stage.finished:
            stage.state = REGISTERED
            self.on_registered(cluster_id, tag)
            return
        stage.local_pending = True
        self._invoke_r(stage)

    def deregister(self, cluster_id: int, tag: Tag) -> None:
        """Mark deregistered and launch the D wave; Go-Ahead arrives later."""
        stage = self._stage(cluster_id, tag)
        if stage.state != REGISTERED:
            raise ValueError(
                f"node {self.node_id} deregisters in {cluster_id}/{tag}"
                f" from state {stage.state!r}"
            )
        stage.state = DEREGISTERED
        if stage.view.parent is None:
            self._root_maybe_go_ahead(stage)
        else:
            self._run_d(stage)

    def state_of(self, cluster_id: int, tag: Tag) -> str:
        key = pack_key(cluster_id, tag)
        return self._stages[key].state if key in self._stages else NONE

    # ------------------------------------------------------------------
    # R wave
    # ------------------------------------------------------------------
    def _invoke_r(self, stage: _StageState) -> None:
        if stage.r_in_flight:
            return
        stage.parent_mark = DIRTY
        stage.r_in_flight = True
        self.messages_sent += 1
        self._send_link(
            stage.parent_link, (OP_REG_UP, stage.key), stage.priority
        )

    def handle_reg_up(self, sender: NodeId, payload: Tuple) -> None:
        """A child's R wave — ``(OP_REG_UP, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._stage_from_wire(key)
        if stage.child_marks.get(sender) != DIRTY:
            stage.dirty_children += 1
        stage.child_marks[sender] = DIRTY
        if stage.finished:
            self.messages_sent += 1
            self._send_link(
                self._links[sender], (OP_REG_DONE, key), stage.priority
            )
            return
        stage.pending_child_invokers.append(self._links[sender])
        self._invoke_r(stage)

    def handle_reg_done(self, sender: NodeId, payload: Tuple) -> None:
        """The parent's R confirmation — ``(OP_REG_DONE, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._stage_from_wire(key)
        stage.r_in_flight = False
        # The parent's subtree-path to the root is dirty, hence so is ours.
        stage.finished = True
        if stage.pending_child_invokers:
            send_link = self._send_link
            done = (OP_REG_DONE, key)
            priority = stage.priority
            for child_link in stage.pending_child_invokers:
                self.messages_sent += 1
                send_link(child_link, done, priority)
            stage.pending_child_invokers.clear()
        if stage.local_pending:
            stage.local_pending = False
            stage.state = REGISTERED
            self.on_registered(stage.cluster_id, stage.tag)

    # ------------------------------------------------------------------
    # D wave
    # ------------------------------------------------------------------
    def _run_d(self, stage: _StageState) -> None:
        if stage.dirty_children:
            return
        if stage.view.parent is None:
            return
        if stage.state in (REGISTERING, REGISTERED):
            return
        if stage.parent_mark != DIRTY:
            # A D wave may arrive after our parent edge already turned
            # waiting (duplicate wave through another child); nothing to do.
            return
        stage.parent_mark = WAITING
        stage.finished = False
        self.messages_sent += 1
        self._send_link(
            stage.parent_link, (OP_REG_DEREG, stage.key), stage.priority
        )

    def handle_dereg(self, sender: NodeId, payload: Tuple) -> None:
        """A child's D wave — ``(OP_REG_DEREG, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._stage_from_wire(key)
        if stage.child_marks.get(sender) == DIRTY:
            stage.dirty_children -= 1
        stage.child_marks[sender] = WAITING
        if stage.view.parent is None:
            self._root_maybe_go_ahead(stage)
        else:
            self._run_d(stage)

    # ------------------------------------------------------------------
    # Go-Ahead wave
    # ------------------------------------------------------------------
    def _root_maybe_go_ahead(self, stage: _StageState) -> None:
        if stage.dirty_children:
            return
        if stage.state in (REGISTERING, REGISTERED):
            # The root's own registration holds the cluster open.
            return
        self._run_g(stage)

    def _run_g(self, stage: _StageState) -> None:
        if stage.state == DEREGISTERED:
            stage.state = FREE
            self.on_go_ahead(stage.cluster_id, stage.tag)
        # Iteration stays in ascending *node id* order (the emit order is
        # part of the pinned schedule); the link id is resolved per emit.
        for child, mark in sorted(stage.child_marks.items()):
            if mark == WAITING:
                stage.child_marks[child] = CLEAN
                self.messages_sent += 1
                self._send_link(
                    self._links[child], (OP_REG_GO_AHEAD, stage.key),
                    stage.priority,
                )

    def handle_go_ahead(self, sender: NodeId, payload: Tuple) -> None:
        """The parent's Go-Ahead — ``(OP_REG_GO_AHEAD, key)``."""
        key = payload[1]
        stage = self._stages.get(key)
        if stage is None:
            stage = self._stage_from_wire(key)
        if stage.parent_mark != WAITING:
            # A registration wave re-dirtied this edge while the Go-Ahead was
            # in flight; drop it — a newer Go-Ahead will follow (Lemma 3.5's
            # case analysis).
            return
        stage.parent_mark = CLEAN
        self._run_g(stage)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        """Process one registration message; returns False if not ours."""
        if not (isinstance(payload, tuple) and payload and payload[0] in _REG_OPS):
            return False
        self.handle_known(sender, payload)
        return True

    def handle_known(self, sender: NodeId, payload: Tuple) -> None:
        """Like :meth:`handle` for hosts that already routed on the opcode."""
        op = payload[0]
        if op == OP_REG_UP:
            self.handle_reg_up(sender, payload)
        elif op == OP_REG_DONE:
            self.handle_reg_done(sender, payload)
        elif op == OP_REG_DEREG:
            self.handle_dereg(sender, payload)
        elif op == OP_REG_GO_AHEAD:
            self.handle_go_ahead(sender, payload)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown registration message kind {op!r}")


def cluster_views_for(
    cover_clusters: Dict[int, "object"], node_id: NodeId
) -> Dict[int, ClusterView]:
    """Extract this node's :class:`ClusterView` for every tree it appears in.

    ``cover_clusters`` maps cluster id to a :class:`~repro.covers.ClusterTree`.
    """
    views: Dict[int, ClusterView] = {}
    for cid, tree in cover_clusters.items():
        if node_id in tree.parent:
            views[cid] = ClusterView(
                cluster_id=cid,
                parent=tree.parent[node_id],
                children=tree.children.get(node_id, ()),
            )
    return views
