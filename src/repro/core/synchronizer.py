"""The deterministic synchronizer for event-driven algorithms (Section 5).

Given any event-driven synchronous program (:class:`~repro.net.program.ProgramSpec`)
and a layered sparse cover for a known bound on its round complexity
(the Theorem 5.3/5.5 setting), this module produces an asynchronous execution
whose per-node message history is *identical* to the synchronous one.

Mechanics, mirroring the thresholded-BFS machinery over *virtual nodes*
``(v, p)`` (Section 5.2/5.3):

* A physical node evaluates pulse ``p`` — feeding its program the batch of
  pulse-``p-1`` messages — only upon receiving Go-Ahead(p); Lemma 5.1
  guarantees every pulse-``p-1`` message has arrived by then (asserted at
  runtime as a machinery oracle).
* If the evaluation sends messages, the virtual node ``(v, p)`` is created;
  it picks a parent among the pulse-``p-1`` virtual nodes that triggered it
  and answers chosen/not-chosen to all of them.
* Safety/emptiness flows, gate registrations (in the ``2^{l(p)+5}``-covers),
  terminus deregistrations and Go-Ahead releases run on the execution forest
  exactly as in BFS, with two adaptations documented in DESIGN.md §5:
  safety is established from transport acknowledgments (``on_delivered``)
  rather than from the chosen/not-chosen answers, and leaf emptiness is the
  monotone over-approximation "this virtual node sent messages".
* Pulses with ``prev(prev(p)) = 0`` use the Section 4.2 convergecast base
  case; initiators hold their pulse-0 sends until every such barrier
  completes.

There is no checking stage (Section 5.3: "we do not require any termination
of this form"): nodes output whenever their program does.
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from ..net.program import ArrivedBatch, NodeInfo, ProgramSpec, PulseApi
from ..net.sync_runtime import run_synchronous
from .bfs_runner import registry_for_threshold
from .cluster_ops import ClusterAggregateModule, and_merge
from .pulse import (
    gating_pulses_cached,
    assemble_pulses,
    cover_level,
    prev,
    prev_prev,
    source_pulses,
)
from .registration import RegistrationModule, resolve_link_pair
from .registry import CoverRegistry

#: Synchronizer-private wire opcodes, continuing the shared-module range
#: (aggregation 0..1, registration 2..5 — see DESIGN.md §6).  Every message
#: a :class:`SynchronizerNode` sends or receives starts with one of the
#: eleven opcodes 0..10, and :meth:`SynchronizerNode.handle` dispatches
#: through one tuple index instead of a string-compare chain.
OP_CHILD_ANS = 6
OP_VFLOW = 7
OP_APP = 8
OP_VGA = 9
OP_VRELEASE = 10


def _reg_priority(tag: int) -> int:
    """Registration stage priority: the tag is the pulse number.

    Priorities are bare ints throughout the synchronizer (every send carries
    one explicitly), ordering the per-link outboxes exactly as the old
    1-tuples did without a tuple allocation per send.
    """
    return tag


def _agg_priority(tag: int) -> int:
    """Aggregate stage priority: the int-coded tag packs
    ``pulse << 1 | kind`` (kind 0 = source-registration barrier, 1 =
    source-deregistration barrier), so the stage is the pulse half."""
    return tag >> 1


def _sreg_tag(p: int) -> int:
    return p << 1


def _sdereg_tag(p: int) -> int:
    return (p << 1) | 1


def _and_merge_for(tag: int) -> Any:
    return and_merge


class _VFlow:
    """Per-(vnode, q) safety/emptiness flow state (plain slots: allocated on
    the hot path, a dataclass init costs ~3x as much)."""

    __slots__ = ("reports", "self_report", "assembled", "empty",
                 "gate_wait", "gate_done")

    def __init__(self) -> None:
        self.reports: Dict[NodeId, bool] = {}
        self.self_report: Optional[bool] = None
        self.assembled = False
        self.empty: Optional[bool] = None
        self.gate_wait = 0
        self.gate_done = False


class _VNode:
    """State of virtual node (v, pulse) held by physical node v.

    All counters are plain ``__slots__`` int fields (DESIGN.md §6):
    ``sends_pending`` counts unacknowledged program sends and
    ``answers_missing`` counts outstanding chosen/not-chosen answers — one
    per distinct recipient plus the node's own self-answer — replacing the
    per-vnode answer *set* the earlier engine allocated and hashed on every
    child answer.  Recipients are distinct by the CONGEST discipline
    (``PulseApi.send`` rejects duplicate targets), so the count carries the
    same information.
    """

    __slots__ = ("pulse", "parent", "parent_link", "parent_is_self",
                 "emits", "release_links",
                 "sends_pending", "sent", "answers_missing", "children",
                 "self_child", "flows", "ga_released", "ans_wait", "ack_wait")

    def __init__(
        self, pulse: int, parent: Optional[NodeId], parent_is_self: bool,
        parent_link: Optional[int] = None,
    ) -> None:
        self.pulse = pulse
        # physical id of parent (v, pulse-1); None = self/root.  The link id
        # toward it is resolved once at creation (DESIGN.md §8).
        self.parent = parent
        self.parent_link = parent_link
        self.parent_is_self = parent_is_self
        # Emit tuples precomputed at creation (DESIGN.md §10): the
        # ``(link_id, wire_payload)`` pairs the program sends expand to,
        # and the Go-Ahead release fan-out (distinct recipients in
        # ascending node-id order — the emit order is part of the pinned
        # schedule), so neither path rebuilds tuples or re-sorts at emit
        # time.
        self.emits: Tuple[Tuple[int, Tuple], ...] = ()
        self.release_links: Tuple[int, ...] = ()
        self.sends_pending = 0
        self.sent = False
        self.answers_missing = 0
        self.children: List[NodeId] = []
        self.self_child = False
        self.flows: Dict[int, _VFlow] = {}
        self.ga_released: Set[int] = set()
        # Recovery mode only (DESIGN.md §11): the identities behind the two
        # counters above, so a crashed neighbor's outstanding ack/answer can
        # be cancelled exactly once (and not cancelled again if it already
        # resolved before the crash was detected).  None outside recovery —
        # the bare counters carry the fault-free protocol.
        self.ans_wait: Optional[Set[Any]] = None
        self.ack_wait: Optional[Set[NodeId]] = None

    def flow(self, q: int) -> _VFlow:
        f = self.flows.get(q)
        if f is None:
            f = _VFlow()
            self.flows[q] = f
        return f

    @property
    def answers_done(self) -> bool:
        return self.answers_missing == 0


class SynchronizerNode:
    """Per-node engine: program execution + the pulse machinery."""

    SELF = "_self"

    def __init__(
        self,
        node_id: NodeId,
        info: NodeInfo,
        program_factory,
        is_initiator: bool,
        registry: CoverRegistry,
        max_pulse: int,
        send,  # (to, payload, priority_tuple) -> None
        set_output,  # (value) -> None
        links=None,  # neighbor -> dense link id (ProcessContext.links)
        send_link=None,  # (link_id, payload, priority) -> None
        pool: bool = True,  # recycle registration stage slots (DESIGN.md §10)
        recovery: bool = False,  # track ack/answer identities for pruning
    ) -> None:
        if max_pulse < 1 or max_pulse & (max_pulse - 1):
            raise ValueError("max_pulse must be a power of two")
        self.node_id = node_id
        self.info = info
        self.program = program_factory(info)
        self.is_initiator = is_initiator
        self.registry = registry
        self.max_pulse = max_pulse
        links, send_link = resolve_link_pair(
            "SynchronizerNode", send, links, send_link
        )
        self._links = links
        self._send_link = send_link
        self.set_output = set_output
        # Recovery mode (DESIGN.md §11): vnodes additionally track *which*
        # acks/answers are outstanding so :meth:`prune_neighbor` can cancel
        # exactly the ones a crashed neighbor still owed.  Costs one set per
        # sending vnode, so it is opt-in; the fault-free schedule is
        # unchanged either way (the counters drive the protocol in both
        # modes, the sets are pure bookkeeping).
        self.recovery = recovery
        self._pruned: Set[NodeId] = set()

        views = registry.views_of(node_id)
        self.reg = RegistrationModule(
            node_id=node_id,
            clusters=views,
            send=send,
            on_registered=self._on_registered,
            on_go_ahead=self._on_cluster_go_ahead,
            priority_fn=_reg_priority,
            links=links,
            send_link=send_link,
            pool=pool,
        )
        self.agg = ClusterAggregateModule(
            node_id=node_id,
            clusters=views,
            send=send,
            on_result=self._on_agg_result,
            merge_fn=_and_merge_for,
            priority_fn=_agg_priority,
            links=links,
            send_link=send_link,
        )
        self._api = PulseApi(info)

        self.vnodes: Dict[int, _VNode] = {}
        self.arrived: Dict[int, List[Tuple[NodeId, Any]]] = {}
        self.evaluated: Set[int] = set()
        self.base_pulses = source_pulses(max_pulse)
        self._sreg_pending: Dict[int, Set[int]] = {}
        self._sdereg_pending: Dict[int, Set[int]] = {}
        self._reg_pending: Dict[int, int] = {}
        self._registered: Set[int] = set()
        self._awaiting_dereg: Set[int] = set()
        self._goahead_pending: Dict[int, Set[int]] = {}

        # Opcode-indexed dispatch table (DESIGN.md §6): one tuple index per
        # delivered message in place of the old string-compare chain, calling
        # straight into the module per-kind handlers.
        self._dispatch = (
            self.agg.handle_up,        # 0 OP_AGG_UP
            self.agg.handle_down,      # 1 OP_AGG_DOWN
            self.reg.handle_reg_up,    # 2 OP_REG_UP
            self.reg.handle_reg_done,  # 3 OP_REG_DONE
            self.reg.handle_dereg,     # 4 OP_REG_DEREG
            self.reg.handle_go_ahead,  # 5 OP_REG_GO_AHEAD
            self._handle_child_answer,  # 6 OP_CHILD_ANS
            self._handle_vflow,        # 7 OP_VFLOW
            self._handle_app,          # 8 OP_APP
            self._handle_vga,          # 9 OP_VGA
            self._handle_vrelease,     # 10 OP_VRELEASE
        )

    # ------------------------------------------------------------------
    def _level_for(self, p: int) -> int:
        return self.registry.clamp_level(cover_level(p))

    def start(self) -> None:
        """Pulse 0: initiators evaluate; everyone contributes base barriers."""
        root_sends: List[Tuple[NodeId, Any]] = []
        if self.is_initiator:
            api = self._api
            api.reset()
            self.program.on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                self.set_output(value)
            root_sends = sends
        self.evaluated.add(0)
        is_origin = bool(root_sends)
        if is_origin:
            vnode = _VNode(pulse=0, parent=None, parent_is_self=False)
            self._bind_sends(vnode, root_sends)
            self.vnodes[0] = vnode
            for p in self.base_pulses:
                members = set(
                    self.registry.member_clusters(self.node_id, self._level_for(p))
                )
                self._sreg_pending[p] = set(members)
                self._sdereg_pending[p] = set(members)
        for p in self.base_pulses:
            lvl = self._level_for(p)
            for cid in self.registry.tree_clusters_of(self.node_id, lvl):
                origin_member = is_origin and self.registry.is_member(self.node_id, cid)
                self.agg.contribute(cid, _sreg_tag(p), True)
                if not origin_member:
                    self.agg.contribute(cid, _sdereg_tag(p), True)
        self._maybe_origin_send()

    def _maybe_origin_send(self) -> None:
        vnode = self.vnodes.get(0)
        if (
            vnode is not None
            and not vnode.sent
            and all(not pending for pending in self._sreg_pending.values())
        ):
            self._do_sends(vnode)

    # ------------------------------------------------------------------
    # sending and evaluation
    # ------------------------------------------------------------------
    def _bind_sends(self, vnode: _VNode, sends: List[Tuple[NodeId, Any]]) -> None:
        """Resolve a vnode's program sends once at creation (DESIGN.md §10):
        wire payloads, link ids, and the release fan-out order."""
        links = self._links
        pulse = vnode.pulse
        recipients = tuple(to for to, _ in sends)
        vnode.emits = tuple(
            (links[to], (OP_APP, pulse, payload)) for to, payload in sends
        )
        # Distinct recipients in ascending node-id order (the Go-Ahead
        # release emit order is part of the pinned schedule; recipients are
        # distinct by the CONGEST discipline, the set() is belt-and-braces).
        vnode.release_links = tuple(
            links[to] for to in sorted(set(recipients))
        )
        if self.recovery:
            ans_wait = set(recipients)
            ans_wait.add(self.SELF)
            vnode.ans_wait = ans_wait
            vnode.ack_wait = set(recipients)

    def _do_sends(self, vnode: _VNode) -> None:
        if vnode.sent:
            return
        vnode.sent = True
        emits = vnode.emits
        vnode.sends_pending = len(emits)
        # One answer owed per distinct recipient, plus the self-answer.
        vnode.answers_missing = len(emits) + 1
        send_link = self._send_link
        stage = vnode.pulse + 1
        for lid, wire in emits:
            send_link(lid, wire, stage)
        if not emits:  # pragma: no cover - origins always send
            self._vnode_safe(vnode)

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        if payload[0] != OP_APP:
            return
        if self._pruned and to in self._pruned:
            # The ack was already cancelled synthetically when ``to`` was
            # pruned; a late transport ack (delivered just before the crash,
            # deferred across a down interval) must not double-count.
            return
        vnode = self.vnodes[payload[1]]
        aw = vnode.ack_wait
        if aw is not None:
            aw.discard(to)
        vnode.sends_pending -= 1
        if vnode.sends_pending == 0:
            self._vnode_safe(vnode)

    def _vnode_safe(self, vnode: _VNode) -> None:
        """All of (v, w)'s messages are delivered: emit the flow-(w+1) leaf
        report (emptiness over-approximated as 'has recipients')."""
        q = vnode.pulse + 1
        if q <= self.max_pulse:
            self._flow_assembled(vnode, q, empty=False)

    def _evaluate(self, p: int) -> None:
        if p in self.evaluated:
            return
        self.evaluated.add(p)
        batch: ArrivedBatch = tuple(sorted(self.arrived.get(p - 1, ())))
        api = self._api
        api.reset()
        self.program.on_pulse(api, batch)
        sends, has_output, value = api.collect()
        if sends and p >= self.max_pulse:
            raise RuntimeError(
                f"program sends at pulse {p}, exceeding the declared pulse"
                f" bound {self.max_pulse} (Theorem 5.5 needs T(A) known)"
            )
        if has_output:
            self.set_output(value)
        senders = sorted({u for u, _ in batch})
        prev_vnode = self.vnodes.get(p - 1)
        chosen_parent: Optional[NodeId] = None
        parent_is_self = False
        if sends:
            if senders:
                chosen_parent = senders[0]
            elif prev_vnode is not None:
                parent_is_self = True
            else:
                raise RuntimeError(
                    f"node {self.node_id} sent at pulse {p} without any"
                    f" pulse-{p - 1} trigger: the program is not event-driven"
                )
            links = self._links
            vnode = _VNode(
                pulse=p, parent=chosen_parent, parent_is_self=parent_is_self,
                parent_link=(
                    None if chosen_parent is None else links[chosen_parent]
                ),
            )
            self._bind_sends(vnode, sends)
            self.vnodes[p] = vnode
            self._do_sends(vnode)
        # Chosen/not-chosen answers close the parents' child sets.
        links = self._links
        for u in senders:
            self._send_link(links[u], (OP_CHILD_ANS, p, u == chosen_parent), p)
        if prev_vnode is not None:
            self._child_answer(prev_vnode, self.SELF, sends and parent_is_self)

    def _handle_app(self, sender: NodeId, payload: Tuple) -> None:
        p = payload[1]
        if p + 1 in self.evaluated:
            raise AssertionError(
                f"node {self.node_id} received a pulse-{p} message after"
                f" evaluating pulse {p + 1} — Lemma 5.1 violated"
            )
        # get-then-insert, not setdefault: setdefault evaluates its default,
        # allocating a throwaway list per delivered program message.
        arrived = self.arrived
        batch = arrived.get(p)
        if batch is None:
            batch = arrived[p] = []
        batch.append((sender, payload[2]))

    # ------------------------------------------------------------------
    # execution-forest child answers and flows
    # ------------------------------------------------------------------
    def _handle_child_answer(self, sender: NodeId, payload: Tuple) -> None:
        vnode = self._stale_vnode(payload[1] - 1)
        if vnode is None:
            return
        self._child_answer(vnode, sender, payload[2])

    def _child_answer(self, vnode: _VNode, who: Any, chosen: bool) -> None:
        left = vnode.answers_missing - 1
        if left < 0:
            raise AssertionError(
                f"unexpected child answer from {who} at ({self.node_id},"
                f" {vnode.pulse})"
            )
        vnode.answers_missing = left
        answ = vnode.ans_wait
        if answ is not None:
            answ.discard(who)
        if chosen:
            if who == self.SELF:
                vnode.self_child = True
            else:
                vnode.children.append(who)
        if left == 0:
            for q in list(vnode.flows):
                self._try_assemble(vnode, q)
            for q in assemble_pulses(vnode.pulse, self.max_pulse):
                self._try_assemble(vnode, q)

    # ------------------------------------------------------------------
    # churn recovery (DESIGN.md §11)
    # ------------------------------------------------------------------
    def prune_neighbor(self, dead: NodeId) -> None:
        """Detach a crashed neighbor from every piece of local state.

        Called from the failure detector (``on_neighbor_dead``) in recovery
        mode.  Cancels exactly the acknowledgments and chosen/not-chosen
        answers ``dead`` still owed (the ``ack_wait``/``ans_wait`` identity
        sets make the cancellation idempotent against answers that resolved
        before the crash was detected), removes ``dead`` from child sets and
        flow reports, strips it from unsent emit lists, and forwards the
        prune to the registration and aggregation modules so their
        convergecasts re-close over the survivors.  Idempotent per neighbor.
        """
        if not self.recovery:
            raise RuntimeError(
                "prune_neighbor requires recovery mode (SynchronizerNode"
                " was built with recovery=False)"
            )
        if dead in self._pruned:
            return
        self._pruned.add(dead)
        self.reg.prune_child(dead)
        self.agg.prune_child(dead)
        dead_link = self._links[dead]
        for vnode in list(self.vnodes.values()):
            if not vnode.sent:
                # Not yet emitted: simply stop addressing the dead node.
                # The waits stay consistent because ``_do_sends`` derives
                # both counters from the (now filtered) emit list.
                if any(lid == dead_link for lid, _ in vnode.emits):
                    vnode.emits = tuple(
                        (lid, w) for lid, w in vnode.emits if lid != dead_link
                    )
                    vnode.release_links = tuple(
                        lid for lid in vnode.release_links if lid != dead_link
                    )
                    vnode.ans_wait.discard(dead)
                    vnode.ack_wait.discard(dead)
                continue
            aw = vnode.ack_wait
            if aw is not None and dead in aw:
                # The dead node never acknowledged: count the send as
                # resolved (it can never arrive — the transport jams
                # messages into a crashed receiver without acking).
                aw.discard(dead)
                vnode.sends_pending -= 1
                if vnode.sends_pending == 0:
                    self._vnode_safe(vnode)
            answ = vnode.ans_wait
            if answ is not None and dead in answ:
                # The dead node never answered chosen/not-chosen: a crashed
                # child is not-chosen by fiat.
                self._child_answer(vnode, dead, False)
            if dead in vnode.children:
                # Answered chosen before crashing: drop the subtree.  Any
                # flow already waiting on its report re-closes over the
                # surviving children.
                vnode.children.remove(dead)
                for flow in vnode.flows.values():
                    flow.reports.pop(dead, None)
                if vnode.answers_missing == 0:
                    for q in list(vnode.flows):
                        self._try_assemble(vnode, q)
                    for q in assemble_pulses(vnode.pulse, self.max_pulse):
                        self._try_assemble(vnode, q)

    def readmit_neighbor(self, returned: NodeId) -> None:
        """Re-admit a re-joined neighbor into the protocol stacks (§15).

        Inverse of :meth:`prune_neighbor`, restricted to what is sound
        going *forward*: the neighbor leaves the pruned set (its messages
        reach the modules again), and the registration and aggregation
        views are restored so stages and barrier instances created after
        the readmission address it in its original deterministic position.
        Nothing is rewound — vnodes that already re-closed their waits over
        the survivors stay closed (the fresh incarnation never answers for
        pulses it did not witness), and poisoned pooled slots stay
        poisoned.  Idempotent per neighbor; a no-op for a neighbor that
        was never pruned.
        """
        if not self.recovery:
            raise RuntimeError(
                "readmit_neighbor requires recovery mode (SynchronizerNode"
                " was built with recovery=False)"
            )
        if returned not in self._pruned:
            return
        self._pruned.discard(returned)
        self.reg.readmit_child(returned)
        self.agg.readmit_child(returned)

    def _stale_vnode(self, p: int) -> Optional[_VNode]:
        """Vnode lookup tolerating re-join staleness (DESIGN.md §15).

        In recovery mode a neighbor that won the rejoin-vs-detect race
        never pruned this node and keeps addressing execution-forest
        state the previous incarnation held; the fresh incarnation drops
        such traffic (``None``) instead of crashing — it stays passive
        for epochs it did not witness.  Outside recovery mode nodes are
        never rebuilt, so a missing vnode is a protocol bug and raises
        exactly as the plain indexing did.
        """
        vnode = self.vnodes.get(p)
        if vnode is None and not self.recovery:
            raise KeyError(p)
        return vnode

    def _handle_vflow(self, sender: NodeId, payload: Tuple) -> None:
        vnode = self._stale_vnode(payload[1])
        if vnode is None:
            return
        q = payload[2]
        flows = vnode.flows
        flow = flows.get(q)
        if flow is None:
            flow = flows[q] = _VFlow()
        if sender in flow.reports:
            raise AssertionError(f"duplicate flow report from {sender}")
        flow.reports[sender] = payload[3]
        self._try_assemble(vnode, q)

    def _self_flow_report(self, vnode: _VNode, q: int, empty: bool) -> None:
        flow = vnode.flow(q)
        flow.self_report = empty
        self._try_assemble(vnode, q)

    def _try_assemble(self, vnode: _VNode, q: int) -> None:
        flows = vnode.flows
        flow = flows.get(q)
        if flow is None:
            flow = flows[q] = _VFlow()
        if flow.assembled or vnode.answers_missing:
            return
        if q == vnode.pulse + 1:
            return  # leaf path (delivery confirmations) assembles this one
        # Flow reports only come from chosen children (the per-link priority
        # discipline delivers the child answer first), so a length check
        # replaces the old set comparison; a rogue reporter would surface as
        # a KeyError in the parts build below.
        if len(flow.reports) < len(vnode.children):
            return
        if vnode.self_child and flow.self_report is None:
            return
        reports = flow.reports
        empty = True
        for c in vnode.children:
            if not reports[c]:
                empty = False
                break
        if empty and vnode.self_child and not flow.self_report:
            empty = False
        self._flow_assembled(vnode, q, empty)

    def _flow_assembled(self, vnode: _VNode, q: int, empty: bool) -> None:
        flow = vnode.flow(q)
        if flow.assembled:
            return
        flow.assembled = True
        flow.empty = empty
        if vnode.pulse == prev(q) and vnode.pulse > 0 and not empty:
            gates = []
            for p in gating_pulses_cached(q, self.max_pulse):
                cids = self.registry.member_clusters(self.node_id, self._level_for(p))
                if not cids:  # pragma: no cover
                    continue
                self._reg_pending[p] = len(cids)
                flow.gate_wait += 1
                gates.append((p, cids))
            for p, cids in gates:
                for cid in cids:
                    self.reg.register(cid, p)
        if flow.gate_wait == 0:
            self._after_gate(vnode, q)

    def _on_registered(self, cid: int, p: int) -> None:
        self._reg_pending[p] -= 1
        if self._reg_pending[p] > 0:
            return
        self._registered.add(p)
        if p in self._awaiting_dereg:
            self._awaiting_dereg.discard(p)
            self._do_deregister(p)
        q = prev(p)
        vnode = self.vnodes.get(prev_prev(p))
        if vnode is None:  # pragma: no cover - gate must exist
            return
        flow = vnode.flow(q)
        flow.gate_wait -= 1
        if flow.gate_wait == 0 and flow.assembled:
            self._after_gate(vnode, q)

    def _after_gate(self, vnode: _VNode, q: int) -> None:
        flow = vnode.flow(q)
        if flow.gate_done:
            return
        flow.gate_done = True
        if vnode.pulse == prev_prev(q):
            self._terminus(vnode, q, flow)
        elif vnode.parent_is_self:
            self._self_flow_report(self.vnodes[vnode.pulse - 1], q, flow.empty)
        else:
            self._send_link(
                vnode.parent_link, (OP_VFLOW, vnode.pulse - 1, q, flow.empty), q
            )

    def _terminus(self, vnode: _VNode, q: int, flow: _VFlow) -> None:
        if vnode.pulse == 0:
            for cid in list(self._sdereg_pending.get(q, ())):
                self.agg.contribute(cid, _sdereg_tag(q), True)
            if not self._sdereg_pending.get(q):
                self._release_down(vnode, q)
            return
        if q in self._registered:
            self._do_deregister(q)
        elif self._reg_pending.get(q, 0) > 0:
            self._awaiting_dereg.add(q)
        else:
            assert flow.empty, "non-empty terminus without registration"

    def _do_deregister(self, q: int) -> None:
        cids = self.registry.member_clusters(self.node_id, self._level_for(q))
        self._goahead_pending[q] = set(cids)
        for cid in cids:
            self.reg.deregister(cid, q)

    def _on_cluster_go_ahead(self, cid: int, q: int) -> None:
        pending = self._goahead_pending.get(q)
        if pending is None:
            return
        pending.discard(cid)
        if not pending:
            vnode = self.vnodes[prev_prev(q)]
            self._release_down(vnode, q)

    # ------------------------------------------------------------------
    # Go-Ahead propagation down the forest
    # ------------------------------------------------------------------
    def _release_down(self, vnode: _VNode, q: int) -> None:
        if q in vnode.ga_released:
            return
        vnode.ga_released.add(q)
        send_link = self._send_link
        if vnode.pulse == q - 1:
            # The fan-out rides the precomputed release links (distinct
            # recipients in ascending node-id order — the emit order is
            # part of the pinned schedule, resolved once at vnode creation).
            payload = (OP_VRELEASE, q)
            for lid in vnode.release_links:
                send_link(lid, payload, q)
            self._evaluate(q)  # a pulse-(q-1) sender is itself triggered
            return
        flow = vnode.flow(q)
        reports_get = flow.reports.get
        links = self._links
        payload = (OP_VGA, q, vnode.pulse + 1)
        for c in vnode.children:
            if reports_get(c) is False:
                send_link(links[c], payload, q)
        if vnode.self_child and flow.self_report is False:
            self._release_down(self.vnodes[vnode.pulse + 1], q)

    def _handle_vga(self, sender: NodeId, payload: Tuple) -> None:
        vnode = self._stale_vnode(payload[2])
        if vnode is None:
            return
        self._release_down(vnode, payload[1])

    def _handle_vrelease(self, sender: NodeId, payload: Tuple) -> None:
        self._evaluate(payload[1])

    # ------------------------------------------------------------------
    def _on_agg_result(self, cid: int, tag: int, result: Any) -> None:
        p = tag >> 1
        if not tag & 1:  # source-registration barrier
            pending = self._sreg_pending.get(p)
            if pending is not None and cid in pending:
                pending.discard(cid)
                self._maybe_origin_send()
        else:  # source-deregistration barrier
            pending = self._sdereg_pending.get(p)
            if pending is None or cid not in pending:
                return
            pending.discard(cid)
            vnode = self.vnodes.get(0)
            if not pending and vnode is not None:
                flow = vnode.flows.get(p)
                if flow is not None and flow.assembled:
                    self._release_down(vnode, p)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> None:
        op = payload[0]
        try:
            # The explicit sign check keeps a malformed negative opcode from
            # silently indexing the table from the end.
            handler = self._dispatch[op] if op >= 0 else None
        except (IndexError, TypeError):
            handler = None
        if handler is None:
            raise ValueError(f"unknown synchronizer message {payload!r}")
        handler(sender, payload)


class SynchronizerProcess(Process):
    spec: ProgramSpec
    registry: CoverRegistry
    max_pulse: int
    initiators: FrozenSet[NodeId]
    infos: Dict[NodeId, NodeInfo]

    # Only program (OP_APP, ...) messages feed the safety bookkeeping; the
    # transport skips the on_delivered call for all machinery traffic.
    ACK_INTEREST_PREFIX = OP_APP

    #: Opcode range of the node engine's dispatch tuple (0..OP_VRELEASE):
    #: the transport validates the table against this at wiring time.
    NUM_OPCODES = OP_VRELEASE + 1

    #: Recycle registration stage slots (DESIGN.md §10).  Subclasses (or
    #: the byte-identity A/B tests) set False to force fresh allocation.
    pool: bool = True

    #: Track ack/answer identities for churn pruning (DESIGN.md §11).  The
    #: recovery subclass in :mod:`repro.core.recovery` sets True; the
    #: fault-free schedule is unchanged either way.
    recovery: bool = False

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.node = SynchronizerNode(
            node_id=ctx.node_id,
            info=self.infos[ctx.node_id],
            program_factory=self.spec.node_factory,
            is_initiator=ctx.node_id in self.initiators,
            registry=self.registry,
            max_pulse=self.max_pulse,
            send=ctx.send,
            set_output=ctx.set_output,
            # getattr: reference/teaching engines run the same process class
            # without a dense link table; the node then falls back to
            # node-id sends (the identity link map).
            links=getattr(ctx, "links", None),
            send_link=getattr(ctx, "send_link", None),
            pool=self.pool,
            recovery=self.recovery,
        )
        # Instance-level binds shadow the class methods below so the
        # transport calls straight into the node engine (one frame less per
        # delivered message); the methods remain as documentation and for
        # subclasses that super()-call.  ``on_message_table`` exposes the
        # opcode-indexed handler tuple to the transport's table fast path
        # (every synchronizer payload starts with a valid opcode, so the
        # guarded ``handle`` wrapper is needed only for external callers).
        self.on_message = self.node.handle
        self.on_message_table = self.node._dispatch
        self.on_delivered = self.node.on_delivered

    def on_start(self) -> None:
        self.node.start()

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.node.handle(sender, payload)

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        self.node.on_delivered(to, payload)


# The measured pulse bound is a pure function of (graph, spec); benchmark
# sweeps re-run the same pair many times.  Weak keys release dead graphs.
_PULSE_BOUND_CACHE: "WeakKeyDictionary[Graph, Dict[ProgramSpec, int]]" = (
    WeakKeyDictionary()
)


def pulse_bound_for(graph: Graph, spec: ProgramSpec) -> int:
    """Round bound T(A) for the Theorem 5.5 setting, measured synchronously."""
    per_graph = _PULSE_BOUND_CACHE.get(graph)
    if per_graph is None:
        per_graph = _PULSE_BOUND_CACHE[graph] = {}
    bound = per_graph.get(spec)
    if bound is None:
        rounds = run_synchronous(graph, spec).rounds_total
        bound = per_graph[spec] = 1 << max(1, math.ceil(math.log2(max(rounds, 2))))
    return bound


def run_synchronized(
    graph: Graph,
    spec: ProgramSpec,
    delay_model: DelayModel,
    registry: Optional[CoverRegistry] = None,
    max_pulse: Optional[int] = None,
    builder: str = "ap",
    max_events: int = 100_000_000,
) -> AsyncResult:
    """Run ``spec`` asynchronously under the deterministic synchronizer.

    ``max_pulse`` is the known bound on T(A) (Theorem 5.5); when omitted it
    is measured by one synchronous execution, which is also how the
    benchmark harness computes overhead ratios.
    """
    if max_pulse is None:
        max_pulse = pulse_bound_for(graph, spec)
    if registry is None:
        registry = registry_for_threshold(graph, max_pulse, builder)
    namespace = dict(
        spec=spec,
        registry=registry,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
    )
    process_cls = type("BoundSynchronizer", (SynchronizerProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"synchronizer did not finish: {result.stop_reason}")
    return result
