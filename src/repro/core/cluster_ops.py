"""Convergecast/broadcast aggregation on cluster trees.

One primitive covers several of the paper's building blocks:

* information gathering in covers (Section 3.1, Theorems 3.1/3.2): aggregate
  "everyone in this cluster is done with P" (boolean AND) and broadcast the
  confirmation;
* the multi-source registration base case (Section 4.2): convergecast "all
  sources in the cluster have p-registered / p-deregistered", broadcast the
  confirmation / the Go-Ahead;
* leader election (Section 6): convergecast the minimum candidate identifier
  per cluster and broadcast it.

An *instance* is identified by ``(cluster_id, tag)``; on the wire the
pair travels as the packed key of :func:`repro.core.registration.pack_key`
(one pre-hashed int for int tags), so an aggregate message is
``(op, key, value)`` and handlers index their instance dict without
building a tuple per message (DESIGN.md §8).  Every node on the cluster
tree (members and Steiner relays alike) eventually contributes one value;
a node forwards up once it holds its own value and one value per child,
and the root broadcasts the combined result down.  Cost: exactly two
messages per tree edge per instance and one round trip of the tree height —
the counts Theorem 3.1 charges.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..net.graph import NodeId
from .registration import (
    IDENTITY_LINKS,
    ClusterView,
    Key,
    pack_key,
    resolve_link_pair,
    unpack_key,
)

#: Wire opcodes (DESIGN.md §6): message kinds are small consecutive ints so
#: hosts dispatch through a tuple index instead of a string-compare chain.
#: The shared modules own the 0..5 range (aggregation here, registration in
#: :mod:`repro.core.registration`); hosts number their private kinds from 6.
OP_AGG_UP = 0
OP_AGG_DOWN = 1

_AGG_OPS = (OP_AGG_UP, OP_AGG_DOWN)

Tag = Any
MergeFn = Callable[[Any, Any], Any]

#: Sentinel stored as a pruned child's "value": the merge loop skips it, so
#: a crashed subtree simply contributes nothing (identity element) without
#: the merge functions having to know about crashes.
_PRUNED = object()


class _InstanceState:
    """Per-(cluster, tag) aggregation state at one node.

    Plain slots, and *pooled* (DESIGN.md §10): an aggregation instance is
    strictly one convergecast plus one broadcast, so the moment
    ``on_result`` has fired at a node the instance can never receive
    another message there — completed instances are recycled through the
    module's free list and :meth:`reuse` resets the slot in place (the
    child-value dict is cleared, not reallocated).
    """

    __slots__ = ("key", "cluster_id", "tag", "view", "contributed", "value",
                 "child_values", "missing", "sent_up", "result", "done",
                 "priority", "parent_link", "children_links")

    def __init__(self, key: Key, cluster_id: int, tag: Tag,
                 view: "ClusterView", priority: Any,
                 links: Mapping[NodeId, int]) -> None:
        # Only the container is created here; every other field is set by
        # reuse(), so the field list exists exactly once and a slot added
        # to one path cannot silently go stale on the other.
        self.child_values: Dict[NodeId, Any] = {}
        self.reuse(key, cluster_id, tag, view, priority, links)

    def reuse(self, key: Key, cluster_id: int, tag: Tag,
              view: "ClusterView", priority: Any,
              links: Mapping[NodeId, int]) -> None:
        """Reset a (recycled or brand-new) slot for a new (cluster, tag)."""
        # The identity travels with the instance so emits reuse the packed
        # wire key and ``on_result`` never decodes.
        self.key = key
        self.cluster_id = cluster_id
        self.tag = tag
        self.view = view  # this node's tree view, bound at creation
        self.contributed = False
        self.value: Any = None
        self.child_values.clear()
        # Child values still owed before this node may forward up; counted
        # down as they arrive so the forward check is one attribute test.
        children = view.children
        self.missing = len(children)
        self.sent_up = False
        self.result: Any = None
        self.done = False
        # The instance's link priority and tree destinations, resolved once
        # at creation so emits skip the per-tag / per-destination probes.
        self.priority = priority
        parent = view.parent
        self.parent_link = None if parent is None else links[parent]
        # map() keeps the resolution frame-free (instances are allocated on
        # the hot path, and most are leaves with no children at all).
        self.children_links = (
            tuple(map(links.__getitem__, children)) if children else ()
        )


class ClusterAggregateModule:
    """Per-node engine for tree aggregation, multiplexed over (cluster, tag).

    Host contract: route payloads whose first element is :data:`OP_AGG_UP` or
    :data:`OP_AGG_DOWN` to :meth:`handle` (or, when the host dispatches on
    opcodes itself, straight to :meth:`handle_up` / :meth:`handle_down`);
    call :meth:`contribute` exactly once per instance on every tree node of
    the cluster; ``merge_fn(tag)`` and ``priority_fn(tag)`` must be pure and
    identical across nodes.  ``on_result(cluster_id, tag, result)`` fires on
    every tree node once the broadcast reaches it.
    """

    def __init__(
        self,
        node_id: NodeId,
        clusters: Dict[int, ClusterView],
        send: Callable[[NodeId, Tuple, Any], None],
        on_result: Callable[[int, Tag, Any], None],
        merge_fn: Callable[[Tag], MergeFn],
        priority_fn: Callable[[Tag], Any],
        links: Optional[Mapping[NodeId, int]] = None,
        send_link: Optional[Callable[[int, Tuple, Any], None]] = None,
        pool: bool = False,
    ) -> None:
        """``links``/``send_link`` wire the module onto the transport's
        dense link table (``ProcessContext.links`` / ``.send_link``):
        instances resolve their tree destinations to link ids once and
        every emit takes the int-indexed fast path.  Hosts that wrap
        ``send`` (payload tagging, standalone tests) omit them and keep
        node-id sends — supplying exactly one half warns (see
        :func:`~repro.core.registration.resolve_link_pair`).

        ``pool`` recycles completed instance slots through a free list
        (DESIGN.md §10): once ``on_result`` has fired at this node the
        instance can never receive another message, so its slot is reset
        in place for the next (cluster, tag) instead of being reallocated.
        It defaults *off*, unlike the registration pool: the synchronizer
        stack creates nearly all aggregation instances in start-time
        batches (Section 4.2 barriers), so the free list sees almost no
        reuse (19 of 12 416 creations on sync-bfs@256) and the per-finish
        dict delete/insert churn measured a 3-5% *regression* on tbfs-16
        — see §10's rejected-alternatives table.  Hosts with genuine
        instance turnover can opt in.  Consequences when on:
        :meth:`result_of` only reflects *live* instances, and the
        exactly-once ``contribute`` contract is only checkable while the
        instance is live.
        """
        self.node_id = node_id
        self.clusters = clusters
        # Never mutated (prunes are copy-on-write): the pristine topology a
        # readmitted child is restored from (DESIGN.md §15).
        self._pristine_clusters = clusters
        self._links, self._send_link = resolve_link_pair(
            "ClusterAggregateModule", send, links, send_link
        )
        self.on_result = on_result
        self.merge_fn = merge_fn
        self.priority_fn = priority_fn
        self._instances: Dict[Key, _InstanceState] = {}
        self._pool = pool
        self._free: List[_InstanceState] = []
        self._merges: Dict[Tag, MergeFn] = {}
        self.messages_sent = 0

    def _make_instance(self, key: Key, cluster_id: int, tag: Tag) -> _InstanceState:
        view = self.clusters.get(cluster_id)
        if view is None:
            raise ValueError(
                f"node {self.node_id} is not on the tree of cluster {cluster_id}"
            )
        free = self._free
        if free:
            # Pool hit: reset a completed slot in place (§10).
            instance = free.pop()
            instance.reuse(key, cluster_id, tag, view, self.priority_fn(tag),
                           self._links)
        else:
            instance = _InstanceState(
                key, cluster_id, tag, view, self.priority_fn(tag), self._links
            )
        self._instances[key] = instance
        return instance

    def _instance(self, cluster_id: int, tag: Tag) -> _InstanceState:
        key = pack_key(cluster_id, tag)
        instance = self._instances.get(key)
        if instance is None:
            instance = self._make_instance(key, cluster_id, tag)
        return instance

    def _instance_from_wire(self, key: Key) -> _InstanceState:
        """Handler miss path: first message of an instance at this node."""
        cluster_id, tag = unpack_key(key)
        return self._make_instance(key, cluster_id, tag)

    # ------------------------------------------------------------------
    def contribute(self, cluster_id: int, tag: Tag, value: Any) -> None:
        """Provide this node's input to the instance (exactly once)."""
        instance = self._instance(cluster_id, tag)
        if instance.contributed:
            raise ValueError(
                f"node {self.node_id} double-contributes to {cluster_id}/{tag}"
            )
        instance.contributed = True
        instance.value = value
        self._maybe_forward(instance)

    def result_of(self, cluster_id: int, tag: Tag) -> Optional[Any]:
        """Result of a *live* completed instance, else ``None``.

        Under ``pool=True`` a completed instance is recycled as soon as
        ``on_result`` fires, so this returns ``None`` for it.
        """
        key = pack_key(cluster_id, tag)
        instance = self._instances.get(key)
        return instance.result if instance is not None and instance.done else None

    # ------------------------------------------------------------------
    def _maybe_forward(self, instance: _InstanceState) -> None:
        if instance.sent_up or not instance.contributed:
            return
        if instance.missing:
            return
        view = instance.view
        combined = instance.value
        children = view.children
        if children:
            # The merge closure is only looked up when there is something
            # to merge — leaf instances (most of a tree) skip the probe.
            tag = instance.tag
            merge = self._merges.get(tag)
            if merge is None:
                merge = self._merges[tag] = self.merge_fn(tag)
            child_values = instance.child_values
            for child in children:
                cv = child_values[child]
                if cv is _PRUNED:
                    continue
                combined = merge(combined, cv)
        instance.sent_up = True
        if view.parent is None:
            self._finish(instance, combined)
        else:
            self.messages_sent += 1
            self._send_link(
                instance.parent_link, (OP_AGG_UP, instance.key, combined),
                instance.priority,
            )

    def _finish(self, instance: _InstanceState, result: Any) -> None:
        instance.result = result
        instance.done = True
        children_links = instance.children_links
        if children_links:
            priority = instance.priority
            send_link = self._send_link
            payload = (OP_AGG_DOWN, instance.key, result)
            for child_link in children_links:
                self.messages_sent += 1
                send_link(child_link, payload, priority)
        self.on_result(instance.cluster_id, instance.tag, result)
        # The instance is complete: one convergecast and one broadcast have
        # both passed this node, so no further message can arrive for it —
        # recycle the slot for the next (cluster, tag).
        if self._pool:
            del self._instances[instance.key]
            self._free.append(instance)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        """Process one aggregate message; returns False if not ours."""
        if not (isinstance(payload, tuple) and payload and payload[0] in _AGG_OPS):
            return False
        self.handle_known(sender, payload)
        return True

    def handle_known(self, sender: NodeId, payload: Tuple) -> None:
        """Like :meth:`handle` for hosts that already routed on the opcode."""
        if payload[0] == OP_AGG_UP:
            self.handle_up(sender, payload)
        elif payload[0] == OP_AGG_DOWN:
            self.handle_down(sender, payload)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown aggregate message kind {payload[0]!r}")

    def handle_up(self, sender: NodeId, payload: Tuple) -> None:
        """One convergecast value — ``(OP_AGG_UP, key, value)``."""
        key = payload[1]
        instance = self._instances.get(key)
        if instance is None:
            instance = self._instance_from_wire(key)
        if instance.child_values.get(sender) is _PRUNED:
            # A re-joined child's late value: this barrier already re-closed
            # over the survivors when the crash was detected, so the fresh
            # incarnation's word is dropped (degrade semantics, DESIGN.md
            # §15) — it participates from the next instance onward.
            return
        if sender in instance.child_values:
            raise ValueError(
                f"duplicate convergecast value from {sender} in"
                f" {instance.cluster_id}/{instance.tag}"
            )
        if sender not in instance.view.children:
            raise ValueError(
                f"convergecast value from non-child {sender} in"
                f" {instance.cluster_id}/{instance.tag}"
            )
        instance.child_values[sender] = payload[2]
        instance.missing -= 1
        self._maybe_forward(instance)

    # ------------------------------------------------------------------
    def prune_child(self, dead: NodeId) -> None:
        """Excise a crashed child from every cluster view and live instance.

        Detect-and-degrade semantics (DESIGN.md §11): a convergecast no
        longer waits for the dead subtree — the child's owed value becomes
        the :data:`_PRUNED` sentinel (skipped by the merge loop, i.e. the
        identity element) and any instance it was holding up forwards
        immediately; the broadcast stops addressing the corpse.  A value
        the child delivered *before* crashing is kept (it was validly
        contributed).  Instances whose parent is the corpse are orphans and
        simply stall.  Cluster views are pruned copy-on-write — the view
        dicts may be shared with sibling modules and cached across sweep
        replays.
        """
        dead_link = self._links[dead]
        clusters = dict(self.clusters)
        changed = False
        for cid, view in clusters.items():
            if dead in view.children:
                clusters[cid] = ClusterView(
                    cluster_id=cid,
                    parent=view.parent,
                    children=tuple(c for c in view.children if c != dead),
                )
                changed = True
        if changed:
            self.clusters = clusters
        for instance in list(self._instances.values()):
            if dead not in instance.view.children:
                continue
            if instance.children_links:
                instance.children_links = tuple(
                    lnk for lnk in instance.children_links if lnk != dead_link
                )
            if dead not in instance.child_values:
                instance.child_values[dead] = _PRUNED
                instance.missing -= 1
                self._maybe_forward(instance)

    def readmit_child(self, returned: NodeId) -> None:
        """Restore a re-joined child into the cluster views (DESIGN.md §15).

        Topology-only inverse of :meth:`prune_child`, mirroring
        :meth:`RegistrationModule.readmit_child
        <repro.core.registration.RegistrationModule.readmit_child>`: the
        child re-enters every pristine view in its original sibling
        position, so instances created after the readmission address it
        again.  Live instances keep their pruned closure — a barrier the
        crash already re-closed must not start waiting on a contribution
        the fresh (blank-state) incarnation never sends, and its late
        values are dropped by the ``_PRUNED`` guard in :meth:`handle_up`.
        Idempotent per neighbor.
        """
        pristine = self._pristine_clusters
        clusters = dict(self.clusters)
        changed = False
        for cid, view in clusters.items():
            pv = pristine.get(cid)
            if (pv is None or returned not in pv.children
                    or returned in view.children):
                continue
            keep = set(view.children)
            keep.add(returned)
            clusters[cid] = ClusterView(
                cluster_id=cid,
                parent=view.parent,
                children=tuple(c for c in pv.children if c in keep),
            )
            changed = True
        if changed:
            self.clusters = clusters

    def handle_down(self, sender: NodeId, payload: Tuple) -> None:
        """The broadcast result — ``(OP_AGG_DOWN, key, result)``."""
        key = payload[1]
        instance = self._instances.get(key)
        if instance is None:
            instance = self._instance_from_wire(key)
        self._finish(instance, payload[2])


def and_merge(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def min_merge(a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
