"""Convergecast/broadcast aggregation on cluster trees.

One primitive covers several of the paper's building blocks:

* information gathering in covers (Section 3.1, Theorems 3.1/3.2): aggregate
  "everyone in this cluster is done with P" (boolean AND) and broadcast the
  confirmation;
* the multi-source registration base case (Section 4.2): convergecast "all
  sources in the cluster have p-registered / p-deregistered", broadcast the
  confirmation / the Go-Ahead;
* leader election (Section 6): convergecast the minimum candidate identifier
  per cluster and broadcast it.

An *instance* is identified by ``(cluster_id, tag)``.  Every node on the
cluster tree (members and Steiner relays alike) eventually contributes one
value; a node forwards up once it holds its own value and one value per
child, and the root broadcasts the combined result down.  Cost: exactly two
messages per tree edge per instance and one round trip of the tree height —
the counts Theorem 3.1 charges.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..net.graph import NodeId
from .registration import ClusterView

#: Wire opcodes (DESIGN.md §6): message kinds are small consecutive ints so
#: hosts dispatch through a tuple index instead of a string-compare chain.
#: The shared modules own the 0..5 range (aggregation here, registration in
#: :mod:`repro.core.registration`); hosts number their private kinds from 6.
OP_AGG_UP = 0
OP_AGG_DOWN = 1

_AGG_OPS = (OP_AGG_UP, OP_AGG_DOWN)

Tag = Any
Key = Tuple[int, Tag]
MergeFn = Callable[[Any, Any], Any]


class _InstanceState:
    """Per-(cluster, tag) aggregation state (plain slots: allocated per
    instance on the hot path)."""

    __slots__ = ("view", "contributed", "value", "child_values", "missing",
                 "sent_up", "result", "done", "priority")

    def __init__(self, view: "ClusterView", priority: Any) -> None:
        self.view = view  # this node's tree view, bound at creation
        self.contributed = False
        self.value: Any = None
        self.child_values: Dict[NodeId, Any] = {}
        # Child values still owed before this node may forward up; counted
        # down as they arrive so the forward check is one attribute test.
        self.missing = len(view.children)
        self.sent_up = False
        self.result: Any = None
        self.done = False
        # The instance's link priority, resolved once at creation so emits
        # skip the per-tag dict probe.
        self.priority = priority


class ClusterAggregateModule:
    """Per-node engine for tree aggregation, multiplexed over (cluster, tag).

    Host contract: route payloads whose first element is :data:`OP_AGG_UP` or
    :data:`OP_AGG_DOWN` to :meth:`handle` (or, when the host dispatches on
    opcodes itself, straight to :meth:`handle_up` / :meth:`handle_down`);
    call :meth:`contribute` exactly once per instance on every tree node of
    the cluster; ``merge_fn(tag)`` and ``priority_fn(tag)`` must be pure and
    identical across nodes.  ``on_result(cluster_id, tag, result)`` fires on
    every tree node once the broadcast reaches it.
    """

    def __init__(
        self,
        node_id: NodeId,
        clusters: Dict[int, ClusterView],
        send: Callable[[NodeId, Tuple, Any], None],
        on_result: Callable[[int, Tag, Any], None],
        merge_fn: Callable[[Tag], MergeFn],
        priority_fn: Callable[[Tag], Any],
    ) -> None:
        self.node_id = node_id
        self.clusters = clusters
        self._send = send
        self.on_result = on_result
        self.merge_fn = merge_fn
        self.priority_fn = priority_fn
        self._instances: Dict[Key, _InstanceState] = {}
        self._merges: Dict[Tag, MergeFn] = {}
        self.messages_sent = 0

    def _instance(self, cluster_id: int, tag: Tag) -> _InstanceState:
        key = (cluster_id, tag)
        instance = self._instances.get(key)
        if instance is None:
            view = self.clusters.get(cluster_id)
            if view is None:
                raise ValueError(
                    f"node {self.node_id} is not on the tree of cluster {cluster_id}"
                )
            instance = _InstanceState(view, self.priority_fn(tag))
            self._instances[key] = instance
        return instance

    def _emit(self, to: NodeId, op: int, cluster_id: int, tag: Tag, value: Any,
              priority: Any) -> None:
        self.messages_sent += 1
        self._send(to, (op, cluster_id, tag, value), priority)

    # ------------------------------------------------------------------
    def contribute(self, cluster_id: int, tag: Tag, value: Any) -> None:
        """Provide this node's input to the instance (exactly once)."""
        instance = self._instance(cluster_id, tag)
        if instance.contributed:
            raise ValueError(
                f"node {self.node_id} double-contributes to {cluster_id}/{tag}"
            )
        instance.contributed = True
        instance.value = value
        self._maybe_forward(cluster_id, tag, instance)

    def result_of(self, cluster_id: int, tag: Tag) -> Optional[Any]:
        key = (cluster_id, tag)
        instance = self._instances.get(key)
        return instance.result if instance is not None and instance.done else None

    # ------------------------------------------------------------------
    def _maybe_forward(self, cluster_id: int, tag: Tag, instance: _InstanceState) -> None:
        if instance.sent_up or not instance.contributed:
            return
        if instance.missing:
            return
        view = instance.view
        merge = self._merges.get(tag)
        if merge is None:
            merge = self._merges[tag] = self.merge_fn(tag)
        combined = instance.value
        child_values = instance.child_values
        for child in view.children:
            combined = merge(combined, child_values[child])
        instance.sent_up = True
        if view.parent is None:
            self._finish(cluster_id, tag, instance, combined)
        else:
            self._emit(view.parent, OP_AGG_UP, cluster_id, tag, combined,
                       instance.priority)

    def _finish(self, cluster_id: int, tag: Tag, instance: _InstanceState, result: Any) -> None:
        instance.result = result
        instance.done = True
        priority = instance.priority
        for child in instance.view.children:
            self._emit(child, OP_AGG_DOWN, cluster_id, tag, result, priority)
        self.on_result(cluster_id, tag, result)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        """Process one aggregate message; returns False if not ours."""
        if not (isinstance(payload, tuple) and payload and payload[0] in _AGG_OPS):
            return False
        self.handle_known(sender, payload)
        return True

    def handle_known(self, sender: NodeId, payload: Tuple) -> None:
        """Like :meth:`handle` for hosts that already routed on the opcode."""
        if payload[0] == OP_AGG_UP:
            self.handle_up(sender, payload)
        elif payload[0] == OP_AGG_DOWN:
            self.handle_down(sender, payload)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown aggregate message kind {payload[0]!r}")

    def handle_up(self, sender: NodeId, payload: Tuple) -> None:
        """One convergecast value — ``(OP_AGG_UP, cluster_id, tag, value)``."""
        cluster_id = payload[1]
        tag = payload[2]
        # _instance inlined for the common (existing-instance) case.
        instance = self._instances.get((cluster_id, tag))
        if instance is None:
            instance = self._instance(cluster_id, tag)
        if sender in instance.child_values:
            raise ValueError(
                f"duplicate convergecast value from {sender} in"
                f" {cluster_id}/{tag}"
            )
        if sender not in instance.view.children:
            raise ValueError(
                f"convergecast value from non-child {sender} in"
                f" {cluster_id}/{tag}"
            )
        instance.child_values[sender] = payload[3]
        instance.missing -= 1
        self._maybe_forward(cluster_id, tag, instance)

    def handle_down(self, sender: NodeId, payload: Tuple) -> None:
        """The broadcast result — ``(OP_AGG_DOWN, cluster_id, tag, result)``."""
        cluster_id = payload[1]
        tag = payload[2]
        instance = self._instances.get((cluster_id, tag))
        if instance is None:
            instance = self._instance(cluster_id, tag)
        self._finish(cluster_id, tag, instance, payload[3])


def and_merge(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def min_merge(a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
