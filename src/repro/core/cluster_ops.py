"""Convergecast/broadcast aggregation on cluster trees.

One primitive covers several of the paper's building blocks:

* information gathering in covers (Section 3.1, Theorems 3.1/3.2): aggregate
  "everyone in this cluster is done with P" (boolean AND) and broadcast the
  confirmation;
* the multi-source registration base case (Section 4.2): convergecast "all
  sources in the cluster have p-registered / p-deregistered", broadcast the
  confirmation / the Go-Ahead;
* leader election (Section 6): convergecast the minimum candidate identifier
  per cluster and broadcast it.

An *instance* is identified by ``(cluster_id, tag)``.  Every node on the
cluster tree (members and Steiner relays alike) eventually contributes one
value; a node forwards up once it holds its own value and one value per
child, and the root broadcasts the combined result down.  Cost: exactly two
messages per tree edge per instance and one round trip of the tree height —
the counts Theorem 3.1 charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.graph import NodeId
from .registration import ClusterView

MSG_PREFIX = "agg"

Tag = Any
Key = Tuple[int, Tag]
MergeFn = Callable[[Any, Any], Any]


@dataclass
class _InstanceState:
    contributed: bool = False
    value: Any = None
    child_values: Dict[NodeId, Any] = field(default_factory=dict)
    sent_up: bool = False
    result: Any = None
    done: bool = False


class ClusterAggregateModule:
    """Per-node engine for tree aggregation, multiplexed over (cluster, tag).

    Host contract: route payloads starting with ``"agg"`` to :meth:`handle`;
    call :meth:`contribute` exactly once per instance on every tree node of
    the cluster; ``merge_fn(tag)`` and ``priority_fn(tag)`` must be pure and
    identical across nodes.  ``on_result(cluster_id, tag, result)`` fires on
    every tree node once the broadcast reaches it.
    """

    def __init__(
        self,
        node_id: NodeId,
        clusters: Dict[int, ClusterView],
        send: Callable[[NodeId, Tuple, Any], None],
        on_result: Callable[[int, Tag, Any], None],
        merge_fn: Callable[[Tag], MergeFn],
        priority_fn: Callable[[Tag], Any],
    ) -> None:
        self.node_id = node_id
        self.clusters = clusters
        self._send = send
        self.on_result = on_result
        self.merge_fn = merge_fn
        self.priority_fn = priority_fn
        self._instances: Dict[Key, _InstanceState] = {}
        self.messages_sent = 0

    def _instance(self, cluster_id: int, tag: Tag) -> _InstanceState:
        key = (cluster_id, tag)
        instance = self._instances.get(key)
        if instance is None:
            if cluster_id not in self.clusters:
                raise ValueError(
                    f"node {self.node_id} is not on the tree of cluster {cluster_id}"
                )
            instance = _InstanceState()
            self._instances[key] = instance
        return instance

    def _emit(self, to: NodeId, kind: str, cluster_id: int, tag: Tag, value: Any) -> None:
        self.messages_sent += 1
        self._send(
            to, (MSG_PREFIX, kind, cluster_id, tag, value), self.priority_fn(tag)
        )

    # ------------------------------------------------------------------
    def contribute(self, cluster_id: int, tag: Tag, value: Any) -> None:
        """Provide this node's input to the instance (exactly once)."""
        instance = self._instance(cluster_id, tag)
        if instance.contributed:
            raise ValueError(
                f"node {self.node_id} double-contributes to {cluster_id}/{tag}"
            )
        instance.contributed = True
        instance.value = value
        self._maybe_forward(cluster_id, tag, instance)

    def result_of(self, cluster_id: int, tag: Tag) -> Optional[Any]:
        key = (cluster_id, tag)
        instance = self._instances.get(key)
        return instance.result if instance is not None and instance.done else None

    # ------------------------------------------------------------------
    def _maybe_forward(self, cluster_id: int, tag: Tag, instance: _InstanceState) -> None:
        if instance.sent_up or not instance.contributed:
            return
        view = self.clusters[cluster_id]
        if set(instance.child_values) != set(view.children):
            return
        merge = self.merge_fn(tag)
        combined = instance.value
        for child in view.children:
            combined = merge(combined, instance.child_values[child])
        instance.sent_up = True
        if view.is_root:
            self._finish(cluster_id, tag, instance, combined)
        else:
            self._emit(view.parent, "up", cluster_id, tag, combined)

    def _finish(self, cluster_id: int, tag: Tag, instance: _InstanceState, result: Any) -> None:
        instance.result = result
        instance.done = True
        view = self.clusters[cluster_id]
        for child in view.children:
            self._emit(child, "down", cluster_id, tag, result)
        self.on_result(cluster_id, tag, result)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        if not (isinstance(payload, tuple) and payload and payload[0] == MSG_PREFIX):
            return False
        _, kind, cluster_id, tag, value = payload
        instance = self._instance(cluster_id, tag)
        if kind == "up":
            if sender in instance.child_values:
                raise ValueError(
                    f"duplicate convergecast value from {sender} in"
                    f" {cluster_id}/{tag}"
                )
            instance.child_values[sender] = value
            self._maybe_forward(cluster_id, tag, instance)
        elif kind == "down":
            self._finish(cluster_id, tag, instance, value)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown aggregate message kind {kind!r}")
        return True


def and_merge(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def min_merge(a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
